package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// baseWorkloads is the source-training workload count every epoch-0 snapshot
// reports (the b of the b+e consistency token).
const baseWorkloads = 13

var (
	fixOnce  sync.Once
	fixErr   error
	fixSnaps []*core.Snapshot // epochs 0 (base) .. 3
	fixRecs  []Record         // the absorbs producing epochs 1..3
)

// fixture trains one system and pre-computes a three-absorb chain: the
// snapshots at epochs 0..3 plus the log records that produce them. Tests
// share it read-only — snapshots are immutable and records are only ever
// re-encoded, never mutated.
func fixture(t testing.TB) ([]*core.Snapshot, []Record) {
	t.Helper()
	fixOnce.Do(func() {
		sys, err := core.New(core.Config{Seed: 1}, cloud.Catalog120())
		if err != nil {
			fixErr = err
			return
		}
		meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
			fixErr = err
			return
		}
		base, err := sys.Snapshot()
		if err != nil {
			fixErr = err
			return
		}
		fixSnaps = []*core.Snapshot{base}
		cur := base
		for i, appName := range []string{"Spark-kmeans", "Spark-sort", "Spark-grep"} {
			app, err := workload.ByName(appName)
			if err != nil {
				fixErr = err
				return
			}
			pred, err := cur.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), uint64(100+i)))
			if err != nil {
				fixErr = err
				return
			}
			target := fmt.Sprintf("target-%d", i+1)
			next, err := cur.Absorb(target, pred.LabelWeights, pred.PrunedVec)
			if err != nil {
				fixErr = err
				return
			}
			fixRecs = append(fixRecs, Record{
				Name: target, LabelWeights: pred.LabelWeights,
				PrunedVec: pred.PrunedVec, Epoch: next.Epoch(),
			})
			fixSnaps = append(fixSnaps, next)
			cur = next
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixSnaps, fixRecs
}

// encodeSnap returns the snapshot's deterministic serialization — the state
// fingerprint the recovery tests compare.
func encodeSnap(t testing.TB, sn *core.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustOpen(t testing.TB, base *core.Snapshot, cfg Config) (*Manager, *core.Snapshot) {
	t.Helper()
	m, snap, err := Open(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, snap
}

func appendRecs(t testing.TB, m *Manager, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); err != nil {
			t.Fatal(err)
		}
	}
}

// appendRawToLog writes bytes straight into the log file, bypassing the
// manager — how tests plant garbage tails and forged records.
func appendRawToLog(t testing.TB, dir string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustFrame(t testing.TB, rec Record) []byte {
	t.Helper()
	frame, err := encodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func logSize(t testing.TB, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// --- frame codec (no trained fixture needed) ---

func syntheticRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Name:         fmt.Sprintf("w-%d", i+1),
			LabelWeights: []float64{0.25, float64(i), -1.5},
			PrunedVec:    []float64{1e-9, float64(i) * 3.25},
			Epoch:        uint64(i + 1),
		}
	}
	return recs
}

func TestFrameRoundTrip(t *testing.T) {
	recs := syntheticRecords(4)
	var data []byte
	for _, r := range recs {
		frame, err := encodeFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, frame...)
	}
	got, valid, err := scanLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid = %d, want %d", valid, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Name != recs[i].Name || r.Epoch != recs[i].Epoch {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
}

// TestScanLogEveryPrefix is the codec half of the torn-tail rule: for every
// byte-prefix of a multi-record log, scanning yields exactly the complete
// frames inside the prefix and a valid length at the last frame boundary.
func TestScanLogEveryPrefix(t *testing.T) {
	recs := syntheticRecords(3)
	var data []byte
	boundaries := []int64{0}
	for _, r := range recs {
		frame, err := encodeFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, frame...)
		boundaries = append(boundaries, int64(len(data)))
	}
	for l := 0; l <= len(data); l++ {
		got, valid, err := scanLog(data[:l])
		if err != nil {
			t.Fatalf("prefix %d: %v", l, err)
		}
		want := 0
		for int64(l) >= boundaries[want+1] {
			want++
			if want == len(recs) {
				break
			}
		}
		if len(got) != want {
			t.Fatalf("prefix %d: %d records, want %d", l, len(got), want)
		}
		if valid != boundaries[want] {
			t.Fatalf("prefix %d: valid = %d, want %d", l, valid, boundaries[want])
		}
	}
}

func TestScanLogStopsAtFlippedCRC(t *testing.T) {
	recs := syntheticRecords(2)
	f1, f2 := mustFrame(t, recs[0]), mustFrame(t, recs[1])
	data := append(append([]byte{}, f1...), f2...)
	data[len(f1)+frameHeaderSize] ^= 0xFF // corrupt second payload
	got, valid, err := scanLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || valid != int64(len(f1)) {
		t.Fatalf("got %d records, valid %d; want 1, %d", len(got), valid, len(f1))
	}
}

// A frame whose CRC verifies but whose payload is not a Record is not a torn
// write — those bytes were durably written — so recovery must refuse rather
// than silently drop it.
func TestScanLogCRCValidBadJSONIsCorrupt(t *testing.T) {
	payload := []byte(`"a json string, not a record"`)
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	if _, _, err := scanLog(frame); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
}

func TestScanLogImplausibleLengthIsTorn(t *testing.T) {
	frame := make([]byte, frameHeaderSize+4)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(maxRecordBytes+1))
	recs, valid, err := scanLog(frame)
	if err != nil || len(recs) != 0 || valid != 0 {
		t.Fatalf("recs %d, valid %d, err %v; want torn at 0", len(recs), valid, err)
	}
}

// --- manager recovery edge cases ---

func TestOpenEmptyStateDir(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m, snap := mustOpen(t, snaps[0], Config{Dir: dir})
	if snap.Epoch() != 0 || snap.Workloads() != baseWorkloads {
		t.Fatalf("recovered (%d, %d), want (0, %d)", snap.Epoch(), snap.Workloads(), baseWorkloads)
	}
	if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[0])) {
		t.Fatal("empty-dir recovery diverges from base")
	}
	st := m.Stats()
	if st.Replayed != 0 || st.TornTailBytes != 0 || st.Quarantined != 0 || st.LogBytes != 0 {
		t.Fatalf("stats = %+v, want all-zero recovery", st)
	}
	// The fresh dir is immediately appendable.
	appendRecs(t, m, recs[:1])
	if m.Epoch() != 1 {
		t.Fatalf("epoch after first append = %d", m.Epoch())
	}
}

func TestRecoveryWALOnly(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m1, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	appendRecs(t, m1, recs[:2])
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, snap := mustOpen(t, snaps[0], Config{Dir: dir})
	st := m2.Stats()
	if snap.Epoch() != 2 || st.Replayed != 2 || st.Checkpoints != 0 {
		t.Fatalf("recovered epoch %d, stats %+v", snap.Epoch(), st)
	}
	if snap.Workloads() != baseWorkloads+2 {
		t.Fatalf("workloads = %d, want %d", snap.Workloads(), baseWorkloads+2)
	}
	if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[2])) {
		t.Fatal("WAL-only recovery diverges from the pre-crash snapshot")
	}
}

func TestRecoveryCheckpointOnly(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m1, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	appendRecs(t, m1, recs[:2])
	if err := m1.Checkpoint(snaps[2]); err != nil {
		t.Fatal(err)
	}
	if st := m1.Stats(); st.Checkpoints != 1 || st.LogBytes != 0 {
		t.Fatalf("post-checkpoint stats = %+v", st)
	}
	if n := logSize(t, dir); n != 0 {
		t.Fatalf("log not trimmed after checkpoint: %d bytes", n)
	}
	m1.Close()

	m2, snap := mustOpen(t, snaps[0], Config{Dir: dir})
	st := m2.Stats()
	if snap.Epoch() != 2 || st.Replayed != 0 {
		t.Fatalf("recovered epoch %d, replayed %d; want 2, 0", snap.Epoch(), st.Replayed)
	}
	if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[2])) {
		t.Fatal("checkpoint-only recovery diverges from the checkpointed snapshot")
	}
	// And the recovered manager keeps absorbing where it left off.
	appendRecs(t, m2, recs[2:3])
	if m2.Epoch() != 3 {
		t.Fatalf("epoch after post-recovery append = %d", m2.Epoch())
	}
}

func TestRecoveryCheckpointPlusLogTail(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m1, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	appendRecs(t, m1, recs[:2])
	if err := m1.Checkpoint(snaps[2]); err != nil {
		t.Fatal(err)
	}
	appendRecs(t, m1, recs[2:3])
	m1.Close()

	m2, snap := mustOpen(t, snaps[0], Config{Dir: dir})
	if snap.Epoch() != 3 || m2.Stats().Replayed != 1 {
		t.Fatalf("recovered epoch %d, replayed %d; want 3, 1", snap.Epoch(), m2.Stats().Replayed)
	}
	if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[3])) {
		t.Fatal("checkpoint+tail recovery diverges")
	}
}

func TestCorruptCheckpointQuarantined(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		crcOf   func(p []byte) uint32
	}{
		{"crc-mismatch", []byte("garbage payload"), func(p []byte) uint32 {
			return crc32.Checksum(p, castagnoli) + 1
		}},
		{"crc-valid-undecodable", []byte("not a snapshot"), func(p []byte) uint32 {
			return crc32.Checksum(p, castagnoli)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snaps, recs := fixture(t)
			dir := t.TempDir()
			m1, _ := mustOpen(t, snaps[0], Config{Dir: dir})
			appendRecs(t, m1, recs)
			m1.Close()
			// Plant a corrupt checkpoint next to the intact log.
			ckpt := make([]byte, ckptHeaderSize+len(tc.payload))
			copy(ckpt[:8], ckptMagic[:])
			binary.LittleEndian.PutUint32(ckpt[8:12], tc.crcOf(tc.payload))
			binary.LittleEndian.PutUint32(ckpt[12:16], uint32(len(tc.payload)))
			copy(ckpt[ckptHeaderSize:], tc.payload)
			if err := os.WriteFile(filepath.Join(dir, ckptName), ckpt, 0o644); err != nil {
				t.Fatal(err)
			}

			m2, snap := mustOpen(t, snaps[0], Config{Dir: dir})
			st := m2.Stats()
			if st.Quarantined != 1 {
				t.Fatalf("quarantined = %d, want 1", st.Quarantined)
			}
			if snap.Epoch() != 3 || st.Replayed != 3 {
				t.Fatalf("rebuild from base+WAL gave epoch %d, replayed %d", snap.Epoch(), st.Replayed)
			}
			if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[3])) {
				t.Fatal("rebuilt state diverges from the pre-crash snapshot")
			}
			// Quarantine preserves the evidence and clears the live name.
			qdata, err := os.ReadFile(filepath.Join(dir, quarantineName))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(qdata, ckpt) {
				t.Fatal("quarantined bytes differ from the corrupt checkpoint")
			}
			if _, err := os.Stat(filepath.Join(dir, ckptName)); !os.IsNotExist(err) {
				t.Fatalf("corrupt checkpoint still installed: %v", err)
			}
			// A fresh checkpoint over the rebuilt state works and wins the next
			// recovery.
			if err := m2.Checkpoint(snap); err != nil {
				t.Fatal(err)
			}
			m2.Close()
			m3, snap3 := mustOpen(t, snaps[0], Config{Dir: dir})
			if snap3.Epoch() != 3 || m3.Stats().Replayed != 0 {
				t.Fatalf("post-repair recovery: epoch %d, replayed %d", snap3.Epoch(), m3.Stats().Replayed)
			}
		})
	}
}

func TestDuplicateWorkloadRejectedOnReplay(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m1, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	appendRecs(t, m1, recs[:1])
	m1.Close()
	// Forge a CRC-valid record re-absorbing the same workload at the next
	// epoch: framing is fine, semantics are not.
	dup := recs[0]
	dup.Epoch = 2
	appendRawToLog(t, dir, mustFrame(t, dup))

	_, _, err := Open(snaps[0], Config{Dir: dir})
	if !errors.Is(err, ErrReplayRejected) {
		t.Fatalf("err = %v, want ErrReplayRejected", err)
	}
}

func TestEpochGapRejectedOnReplay(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A log that starts at epoch 2 with no checkpoint covering epoch 1.
	r := recs[1]
	appendRawToLog(t, dir, mustFrame(t, r))
	_, _, err := Open(snaps[0], Config{Dir: dir})
	if !errors.Is(err, ErrEpochGap) {
		t.Fatalf("err = %v, want ErrEpochGap", err)
	}
}

func TestTornTailTruncatedAndLogStaysAppendable(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m1, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	appendRecs(t, m1, recs[:2])
	m1.Close()
	intact := logSize(t, dir)
	appendRawToLog(t, dir, []byte{0x13, 0x37, 0x00})

	m2, snap := mustOpen(t, snaps[0], Config{Dir: dir})
	st := m2.Stats()
	if snap.Epoch() != 2 || st.TornTailBytes != 3 {
		t.Fatalf("epoch %d, torn %d; want 2, 3", snap.Epoch(), st.TornTailBytes)
	}
	if n := logSize(t, dir); n != intact {
		t.Fatalf("log size after truncate = %d, want %d", n, intact)
	}
	appendRecs(t, m2, recs[2:3]) // appends land after the truncated tail
	m2.Close()

	m3, snap3 := mustOpen(t, snaps[0], Config{Dir: dir})
	defer m3.Close()
	if snap3.Epoch() != 3 || m3.Stats().TornTailBytes != 0 {
		t.Fatalf("final recovery: epoch %d, torn %d; want 3, 0", snap3.Epoch(), m3.Stats().TornTailBytes)
	}
	if !bytes.Equal(encodeSnap(t, snap3), encodeSnap(t, snaps[3])) {
		t.Fatal("state after torn-tail append diverges")
	}
}

func TestAppendEpochGuard(t *testing.T) {
	snaps, recs := fixture(t)
	m, _ := mustOpen(t, snaps[0], Config{Dir: t.TempDir()})
	r := recs[1] // epoch 2 against a manager at epoch 0
	if err := m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); err == nil {
		t.Fatal("epoch-skipping append accepted")
	}
	if m.Epoch() != 0 {
		t.Fatalf("epoch moved to %d on rejected append", m.Epoch())
	}
}

func TestCheckpointEpochGuard(t *testing.T) {
	snaps, recs := fixture(t)
	m, _ := mustOpen(t, snaps[0], Config{Dir: t.TempDir()})
	appendRecs(t, m, recs[:1])
	// A checkpoint that does not cover the acknowledged epoch would license
	// trimming records it does not contain.
	if err := m.Checkpoint(snaps[0]); err == nil {
		t.Fatal("stale checkpoint accepted")
	}
	if err := m.Checkpoint(snaps[2]); err == nil {
		t.Fatal("future checkpoint accepted")
	}
	if err := m.Checkpoint(snaps[1]); err != nil {
		t.Fatalf("covering checkpoint rejected: %v", err)
	}
}

func TestCommittedCompactsPastThreshold(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m, _ := mustOpen(t, snaps[0], Config{Dir: dir, CompactBytes: 1})
	appendRecs(t, m, recs[:1])
	if err := m.Committed(snaps[1]); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Checkpoints != 1 || st.LogBytes != 0 {
		t.Fatalf("stats after threshold compaction = %+v", st)
	}
}

func TestCommittedNegativeThresholdNeverCompacts(t *testing.T) {
	snaps, recs := fixture(t)
	m, _ := mustOpen(t, snaps[0], Config{Dir: t.TempDir(), CompactBytes: -1})
	appendRecs(t, m, recs[:1])
	if err := m.Committed(snaps[1]); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Checkpoints != 0 || st.LogBytes == 0 {
		t.Fatalf("stats = %+v, want no compaction", st)
	}
}

func TestOpenClearsStaleCheckpointTemp(t *testing.T) {
	snaps, _ := fixture(t)
	dir := t.TempDir()
	tmp := filepath.Join(dir, ckptTmpName)
	if err := os.WriteFile(tmp, []byte("half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	defer m.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived Open: %v", err)
	}
}

func TestAppendAfterCloseRefuses(t *testing.T) {
	snaps, recs := fixture(t)
	m, _ := mustOpen(t, snaps[0], Config{Dir: t.TempDir()})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if err := m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("err = %v, want ErrLogBroken", err)
	}
}

// TestAppendFailedSyncRollsBack covers the ack invariant from the other side:
// an append whose fsync fails must not resurface after restart.
func TestAppendFailedSyncRollsBack(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	ffs := chaos.NewFaultFS(chaos.OSFS(), chaos.FSPlan{FailSync: 1})
	m, _ := mustOpen(t, snaps[0], Config{Dir: dir, FS: ffs})
	r := recs[0]
	if err := m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); err == nil {
		t.Fatal("append with failed fsync acknowledged")
	} else if errors.Is(err, ErrLogBroken) {
		t.Fatalf("rollback should have saved the log: %v", err)
	}
	if m.Epoch() != 0 {
		t.Fatalf("epoch after failed append = %d, want 0", m.Epoch())
	}
	// The rollback truncated the unacknowledged bytes; the same absorb can be
	// retried on the same handle.
	if err := m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, snap := mustOpen(t, snaps[0], Config{Dir: dir})
	defer m2.Close()
	if snap.Epoch() != 1 || m2.Stats().Replayed != 1 {
		t.Fatalf("recovered epoch %d, replayed %d; want 1, 1", snap.Epoch(), m2.Stats().Replayed)
	}
	if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[1])) {
		t.Fatal("recovered state diverges after rollback + retry")
	}
}

func TestOpenValidatesArguments(t *testing.T) {
	snaps, _ := fixture(t)
	if _, _, err := Open(nil, Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, _, err := Open(snaps[0], Config{}); err == nil {
		t.Fatal("empty dir accepted")
	}
}
