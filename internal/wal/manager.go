package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sync"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/obs"
)

// State-directory layout.
const (
	logName        = "wal.log"
	ckptName       = "checkpoint.ckpt"
	ckptTmpName    = ckptName + ".tmp"
	quarantineName = ckptName + ".quarantined"
)

// Checkpoint file layout: 8-byte magic, uint32 LE CRC32C of the payload,
// uint32 LE payload length, then the snapshot JSON payload.
var ckptMagic = [8]byte{'V', 'E', 'S', 'T', 'A', 'C', 'K', '1'}

const ckptHeaderSize = 16

// Typed durability errors. Callers match with errors.Is.
var (
	// ErrLogBroken is returned by Append after an earlier append failed in a
	// way that could not be rolled back: the on-disk tail is unknown, so the
	// only safe path is restart-and-recover.
	ErrLogBroken = errors.New("wal: log broken; restart to recover")
	// ErrEpochGap marks a replay whose record epochs skip ahead of the
	// recovered state: the log and checkpoint disagree in a way the torn-tail
	// rule cannot explain.
	ErrEpochGap = errors.New("wal: epoch gap between checkpoint and log")
	// ErrReplayRejected marks a CRC-valid record the snapshot refuses
	// (duplicate workload name): applying it would corrupt the consistency
	// token, so recovery fails loudly instead.
	ErrReplayRejected = errors.New("wal: replay rejected")
)

// Config tunes a Manager. Zero values take the defaults noted per field.
type Config struct {
	// Dir is the state directory (required).
	Dir string
	// FS is the filesystem seam; nil uses the real filesystem. Tests inject
	// chaos.FaultFS here to hit the crash-point matrix.
	FS chaos.FS
	// CompactBytes is the log size that triggers a compaction on Committed;
	// default 256 KiB, negative disables automatic compaction (explicit
	// Checkpoint calls still work).
	CompactBytes int64
	// Tracer receives the durability counters (wal.appends, wal.replayed,
	// wal.torn_tail, wal.checkpoints, wal.quarantined).
	Tracer *obs.Tracer
}

// Stats is a point-in-time view of the manager's durability counters.
type Stats struct {
	// Epoch is the last durably acknowledged epoch.
	Epoch uint64 `json:"epoch"`
	// Appends counts acknowledged appends this session.
	Appends int64 `json:"appends"`
	// Replayed counts log records applied during recovery.
	Replayed int64 `json:"replayed"`
	// TornTailBytes counts bytes truncated from the log tail at recovery.
	TornTailBytes int64 `json:"torn_tail_bytes"`
	// Checkpoints counts checkpoints written this session.
	Checkpoints int64 `json:"checkpoints"`
	// Quarantined counts corrupt checkpoints set aside at recovery.
	Quarantined int64 `json:"quarantined"`
	// LogBytes is the current log length.
	LogBytes int64 `json:"log_bytes"`
	// Broken reports an unrecoverable append failure (see ErrLogBroken).
	Broken bool `json:"broken"`
}

// Manager owns one state directory: it recovers the snapshot at Open,
// appends absorb records durably, and compacts the log into checkpoints.
// All methods are safe for concurrent use, though the serving layer already
// serializes Append/Committed under its update lock.
type Manager struct {
	cfg Config
	fs  chaos.FS

	mu       sync.Mutex
	logFile  chaos.File
	logBytes int64
	epoch    uint64 // last durably acknowledged epoch
	broken   error
	stats    Stats
}

// Open recovers the durable state rooted at cfg.Dir: base state (the epoch-0
// snapshot from the knowledge file) + checkpoint + log replay, torn tail
// truncated. It returns the manager and the recovered snapshot to serve.
// A CRC-mismatched or undecodable checkpoint is quarantined (renamed aside)
// and the state rebuilt from base + WAL; an inconsistent log (epoch gap,
// duplicate workload, CRC-valid-but-undecodable record) fails Open.
func Open(base *core.Snapshot, cfg Config) (*Manager, *core.Snapshot, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("wal: nil base snapshot")
	}
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("wal: empty state directory")
	}
	if cfg.FS == nil {
		cfg.FS = chaos.OSFS()
	}
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = 256 << 10
	}
	m := &Manager{cfg: cfg, fs: cfg.FS}
	if err := m.fs.MkdirAll(cfg.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", cfg.Dir, err)
	}
	// A leftover temp checkpoint is a crashed compaction; it was never
	// installed, so it is garbage.
	if err := m.fs.Remove(m.path(ckptTmpName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: clearing stale checkpoint temp: %w", err)
	}

	snap, err := m.loadCheckpoint(base)
	if err != nil {
		return nil, nil, err
	}
	snap, err = m.replayLog(snap)
	if err != nil {
		return nil, nil, err
	}

	f, err := m.fs.Append(m.path(logName))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening log for append: %w", err)
	}
	m.logFile = f
	m.epoch = snap.Epoch()
	return m, snap, nil
}

func (m *Manager) path(name string) string { return filepath.Join(m.cfg.Dir, name) }

// loadCheckpoint returns the checkpointed snapshot, or base when no valid
// checkpoint exists. Corrupt checkpoints are quarantined, never deleted:
// an operator can still inspect what was on disk.
func (m *Manager) loadCheckpoint(base *core.Snapshot) (*core.Snapshot, error) {
	data, err := m.fs.ReadFile(m.path(ckptName))
	if errors.Is(err, fs.ErrNotExist) {
		return base, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading checkpoint: %w", err)
	}
	payload, verr := verifyCheckpoint(data)
	if verr == nil {
		snap, derr := core.DecodeSnapshot(bytes.NewReader(payload), base.Config(), base.Catalog())
		if derr == nil {
			return snap, nil
		}
		verr = derr
	}
	// Quarantine and fall back to base + WAL.
	if err := m.fs.Rename(m.path(ckptName), m.path(quarantineName)); err != nil {
		return nil, fmt.Errorf("wal: quarantining corrupt checkpoint (%v): %w", verr, err)
	}
	if err := m.fs.SyncDir(m.cfg.Dir); err != nil {
		return nil, fmt.Errorf("wal: syncing dir after quarantine: %w", err)
	}
	m.stats.Quarantined++
	if m.cfg.Tracer.Enabled() {
		m.cfg.Tracer.Count("wal.quarantined", 1)
		m.cfg.Tracer.Event("wal/recovery", "checkpoint quarantined: "+verr.Error())
	}
	return base, nil
}

// verifyCheckpoint checks the magic, length and CRC32C of a checkpoint image
// and returns its payload.
func verifyCheckpoint(data []byte) ([]byte, error) {
	if len(data) < ckptHeaderSize {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], ckptMagic[:]) {
		return nil, fmt.Errorf("wal: bad checkpoint magic")
	}
	n := int64(binary.LittleEndian.Uint32(data[12:16]))
	if ckptHeaderSize+n != int64(len(data)) {
		return nil, fmt.Errorf("wal: checkpoint length %d does not match %d payload bytes",
			n, len(data)-ckptHeaderSize)
	}
	payload := data[ckptHeaderSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, fmt.Errorf("wal: checkpoint CRC mismatch")
	}
	return payload, nil
}

// replayLog applies the log's records on top of snap, truncating a torn
// tail at the first bad frame. Records at or below the snapshot's epoch were
// compacted into the checkpoint already and are skipped; a record that skips
// an epoch or re-absorbs an existing workload fails recovery.
func (m *Manager) replayLog(snap *core.Snapshot) (*core.Snapshot, error) {
	data, err := m.fs.ReadFile(m.path(logName))
	if errors.Is(err, fs.ErrNotExist) {
		return snap, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading log: %w", err)
	}
	recs, valid, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	if torn := int64(len(data)) - valid; torn > 0 {
		if err := m.fs.Truncate(m.path(logName), valid); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		m.stats.TornTailBytes += torn
		if m.cfg.Tracer.Enabled() {
			m.cfg.Tracer.Count("wal.torn_tail", 1)
			m.cfg.Tracer.Event("wal/recovery", fmt.Sprintf("truncated %d-byte torn tail", torn))
		}
	}
	for _, rec := range recs {
		if rec.Epoch <= snap.Epoch() {
			continue // already folded into the checkpoint
		}
		if rec.Epoch != snap.Epoch()+1 {
			return nil, fmt.Errorf("%w: record epoch %d after state epoch %d",
				ErrEpochGap, rec.Epoch, snap.Epoch())
		}
		next, err := applyRecord(snap, rec)
		if err != nil {
			return nil, err
		}
		snap = next
		m.stats.Replayed++
	}
	if m.cfg.Tracer.Enabled() && m.stats.Replayed > 0 {
		m.cfg.Tracer.Count("wal.replayed", m.stats.Replayed)
	}
	m.logBytes = valid
	m.stats.LogBytes = valid
	return snap, nil
}

// applyRecord folds one replayed (or replicated) record into snap by its
// kind. A record the snapshot refuses — duplicate workload, invalid catalog
// update, or an unknown kind, which a current binary must never guess at —
// fails with ErrReplayRejected.
func applyRecord(snap *core.Snapshot, rec Record) (*core.Snapshot, error) {
	switch rec.Kind {
	case KindAbsorb:
		next, err := snap.Absorb(rec.Name, rec.LabelWeights, rec.PrunedVec)
		if err != nil {
			return nil, fmt.Errorf("%w: epoch %d workload %q: %v",
				ErrReplayRejected, rec.Epoch, rec.Name, err)
		}
		return next, nil
	case KindCatalog:
		if rec.Catalog == nil {
			return nil, fmt.Errorf("%w: epoch %d catalog record without update payload",
				ErrReplayRejected, rec.Epoch)
		}
		next, err := snap.AbsorbCatalog(*rec.Catalog)
		if err != nil {
			return nil, fmt.Errorf("%w: epoch %d catalog update: %v",
				ErrReplayRejected, rec.Epoch, err)
		}
		return next, nil
	default:
		return nil, fmt.Errorf("%w: epoch %d unknown record kind %q",
			ErrReplayRejected, rec.Epoch, rec.Kind)
	}
}

// ApplyRecord is applyRecord for replication consumers (internal/replicate):
// a follower replaying shipped frames must fold each record exactly as
// recovery would, including the fail-closed handling of unknown kinds.
func ApplyRecord(snap *core.Snapshot, rec Record) (*core.Snapshot, error) {
	return applyRecord(snap, rec)
}

// Append durably logs one absorb record and acknowledges it: when Append
// returns nil the record survives any crash. It must be called *before* the
// snapshot carrying the record is published (serve.Server.Absorb's ordering).
// A failed write or fsync is rolled back by truncating to the pre-append
// length, so the unacknowledged record cannot resurface after restart; if
// the rollback itself fails the log is marked broken and every further
// Append refuses with ErrLogBroken.
func (m *Manager) Append(name string, labelWeights, prunedVec []float64, epoch uint64) error {
	return m.appendRecord(Record{Name: name, LabelWeights: labelWeights, PrunedVec: prunedVec, Epoch: epoch})
}

// AppendCatalog durably logs one catalog-update record with the same
// durability and ordering contract as Append: fsynced before the snapshot
// at the new epoch is published.
func (m *Manager) AppendCatalog(up cloud.Update, epoch uint64) error {
	u := up
	return m.appendRecord(Record{Kind: KindCatalog, Catalog: &u, Epoch: epoch})
}

func (m *Manager) appendRecord(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return fmt.Errorf("%w: %v", ErrLogBroken, m.broken)
	}
	if rec.Epoch != m.epoch+1 {
		return fmt.Errorf("wal: append epoch %d, want %d", rec.Epoch, m.epoch+1)
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	if _, err := m.logFile.Write(frame); err != nil {
		return m.rollbackLocked(fmt.Errorf("wal: appending record: %w", err))
	}
	if err := m.logFile.Sync(); err != nil {
		return m.rollbackLocked(fmt.Errorf("wal: fsyncing record: %w", err))
	}
	m.logBytes += int64(len(frame))
	m.stats.LogBytes = m.logBytes
	m.epoch = rec.Epoch
	m.stats.Appends++
	if m.cfg.Tracer.Enabled() {
		m.cfg.Tracer.Count("wal.appends", 1)
	}
	return nil
}

// rollbackLocked undoes a failed append by truncating back to the last
// acknowledged length and fsyncing the truncation. If that fails too, the
// on-disk tail is unknowable and the log is marked broken.
func (m *Manager) rollbackLocked(cause error) error {
	if err := m.fs.Truncate(m.path(logName), m.logBytes); err != nil {
		m.broken = fmt.Errorf("%v; rollback truncate failed: %v", cause, err)
		m.stats.Broken = true
		return m.broken
	}
	if err := m.logFile.Sync(); err != nil {
		m.broken = fmt.Errorf("%v; rollback fsync failed: %v", cause, err)
		m.stats.Broken = true
		return m.broken
	}
	return cause
}

// Committed notifies the manager that snap (carrying the last appended
// record) has been published, giving it the chance to compact. Compaction
// failure is not an absorb failure — the record is already durable in the
// log — so callers treat a Committed error as operational noise, not as a
// reason to unpublish.
func (m *Manager) Committed(snap *core.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.CompactBytes < 0 || m.logBytes < m.cfg.CompactBytes {
		return nil
	}
	return m.checkpointLocked(snap)
}

// Checkpoint forces a compaction: write the checksummed checkpoint
// write-temp → fsync → rename → fsync(dir), then trim the log. Used by the
// drain-then-checkpoint shutdown and by Committed past the size threshold.
func (m *Manager) Checkpoint(snap *core.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointLocked(snap)
}

func (m *Manager) checkpointLocked(snap *core.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("wal: checkpoint nil snapshot")
	}
	// Trimming the log is only safe when the checkpoint covers every
	// acknowledged record (the compaction invariant).
	if snap.Epoch() != m.epoch {
		return fmt.Errorf("wal: checkpoint epoch %d does not cover acknowledged epoch %d",
			snap.Epoch(), m.epoch)
	}
	return m.writeCheckpointLocked(snap)
}

// Install makes snap the durable state wholesale: checkpoint it and trim the
// log, then adopt its epoch as the acknowledged epoch. This is the commit
// half of a staged version upgrade (internal/rollout) — the candidate
// snapshot replaces checkpoint ∪ log as the recovered state, exactly as if
// every epoch between the old ack and the candidate had been appended and
// compacted. Rewinding is refused: a candidate below the acknowledged epoch
// would forget durably acknowledged state.
func (m *Manager) Install(snap *core.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return fmt.Errorf("%w: %v", ErrLogBroken, m.broken)
	}
	if snap == nil {
		return fmt.Errorf("wal: install nil snapshot")
	}
	if snap.Epoch() < m.epoch {
		return fmt.Errorf("wal: install epoch %d would rewind acknowledged epoch %d",
			snap.Epoch(), m.epoch)
	}
	if err := m.writeCheckpointLocked(snap); err != nil {
		return err
	}
	m.epoch = snap.Epoch()
	return nil
}

// writeCheckpointLocked writes the checksummed checkpoint write-temp → fsync
// → rename → fsync(dir) and trims the log. Caller holds m.mu and has already
// established that trimming is safe (the checkpoint covers every record the
// log will lose).
func (m *Manager) writeCheckpointLocked(snap *core.Snapshot) error {
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		return fmt.Errorf("wal: encoding checkpoint: %w", err)
	}
	payload := buf.Bytes()
	header := make([]byte, ckptHeaderSize)
	copy(header[:8], ckptMagic[:])
	binary.LittleEndian.PutUint32(header[8:12], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(header[12:16], uint32(len(payload)))

	tmp := m.path(ckptTmpName)
	f, err := m.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	if _, err := f.Write(header); err == nil {
		_, err = f.Write(payload)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsyncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	if err := m.fs.Rename(tmp, m.path(ckptName)); err != nil {
		return fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	if err := m.fs.SyncDir(m.cfg.Dir); err != nil {
		return fmt.Errorf("wal: syncing dir after checkpoint: %w", err)
	}
	// The checkpoint is durable; the log's records are now redundant. A
	// crash before (or during) this trim is harmless — replay skips records
	// at or below the checkpoint epoch.
	if err := m.fs.Truncate(m.path(logName), 0); err != nil {
		return fmt.Errorf("wal: trimming log after checkpoint: %w", err)
	}
	if err := m.logFile.Sync(); err != nil {
		return fmt.Errorf("wal: fsyncing trimmed log: %w", err)
	}
	m.logBytes = 0
	m.stats.LogBytes = 0
	m.stats.Checkpoints++
	if m.cfg.Tracer.Enabled() {
		m.cfg.Tracer.Count("wal.checkpoints", 1)
		m.cfg.Tracer.Event("wal/checkpoint", fmt.Sprintf("epoch %d, %d bytes", snap.Epoch(), len(payload)))
	}
	return nil
}

// Epoch returns the last durably acknowledged epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Stats returns the current durability counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Epoch = m.epoch
	return st
}

// Close releases the log handle. Appending after Close fails.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.logFile == nil {
		return nil
	}
	err := m.logFile.Close()
	m.logFile = nil
	if m.broken == nil {
		m.broken = fmt.Errorf("wal: manager closed")
		m.stats.Broken = true
	}
	return err
}
