package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vesta/internal/chaos"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout", "decisions.journal")
	j, prior, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal recovered %d entries", len(prior))
	}
	want := [][]byte{[]byte(`{"op":"begin"}`), []byte(`{"op":"stage","stage":1}`), []byte(``)}
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if j.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", j.Entries())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
	if j2.Entries() != 3 {
		t.Fatalf("reopened Entries = %d, want 3", j2.Entries())
	}
}

// TestJournalTornTail crashes mid-append at every byte prefix of the last
// frame: recovery must return the fully-written entries and truncate the torn
// remainder, for every possible tear point.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "decisions.journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("second-longer-entry")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := int64(frameHeaderSize + len("first"))
	for cut := firstLen; cut < int64(len(full)); cut++ {
		torn := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, entries, err := OpenJournal(torn, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		jt.Close()
		if len(entries) != 1 || string(entries[0]) != "first" {
			t.Fatalf("cut %d: recovered %q, want just [first]", cut, entries)
		}
		if n, err := os.Stat(torn); err != nil || n.Size() != firstLen {
			t.Fatalf("cut %d: torn tail not truncated (size %d, want %d)", cut, n.Size(), firstLen)
		}
	}
}

// TestJournalAppendAfterFailedSync proves the rollback contract: an injected
// fsync failure rolls the entry back, the journal stays usable, and the
// failed entry never resurfaces at recovery.
func TestJournalAppendAfterFailedSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "decisions.journal")
	ffs := chaos.NewFaultFS(chaos.OSFS(), chaos.FSPlan{FailSync: 2})
	j, _, err := OpenJournal(path, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("lost")); err == nil {
		t.Fatal("append with failed fsync reported success")
	}
	if err := j.Append([]byte("after")); err != nil {
		t.Fatalf("journal unusable after rolled-back append: %v", err)
	}
	j.Close()
	_, entries, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || string(entries[0]) != "kept" || string(entries[1]) != "after" {
		t.Fatalf("recovered %q, want [kept after]", entries)
	}
}

func TestJournalClosedRefuses(t *testing.T) {
	j, _, err := OpenJournal(filepath.Join(t.TempDir(), "j"), nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append([]byte("x")); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("append after close = %v, want ErrLogBroken", err)
	}
}
