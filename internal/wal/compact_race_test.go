package wal

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

var (
	extOnce  sync.Once
	extErr   error
	extSnaps []*core.Snapshot
	extRecs  []Record
)

// extendedChain grows the shared fixture chain to ten absorbs — long enough
// that an appender and a compactor genuinely overlap — and returns the
// snapshots at epochs 0..10 plus the records producing them.
func extendedChain(t testing.TB) ([]*core.Snapshot, []Record) {
	t.Helper()
	snaps, recs := fixture(t)
	extOnce.Do(func() {
		extSnaps = append(extSnaps, snaps...)
		extRecs = append(extRecs, recs...)
		apps := []string{"Spark-kmeans", "Spark-sort", "Spark-grep"}
		cur := snaps[len(snaps)-1]
		for i := len(recs); len(extRecs) < 10; i++ {
			app, err := workload.ByName(apps[i%len(apps)])
			if err != nil {
				extErr = err
				return
			}
			pred, err := cur.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), uint64(200+i)))
			if err != nil {
				extErr = err
				return
			}
			target := fmt.Sprintf("race-%d", i+1)
			next, err := cur.Absorb(target, pred.LabelWeights, pred.PrunedVec)
			if err != nil {
				extErr = err
				return
			}
			extRecs = append(extRecs, Record{
				Name: target, LabelWeights: pred.LabelWeights,
				PrunedVec: pred.PrunedVec, Epoch: next.Epoch(),
			})
			extSnaps = append(extSnaps, next)
			cur = next
		}
	})
	if extErr != nil {
		t.Fatal(extErr)
	}
	return extSnaps, extRecs
}

// TestCompactionRacesConcurrentAppends drives an appender, a compactor and
// stats readers against one Manager under the race detector. CompactBytes 1
// makes every Committed call attempt a checkpoint, so compactions interleave
// with appends the whole run. A Committed call that lost the race (its
// snapshot no longer covers the acknowledged epoch) must fail with the
// compaction-invariant error, never trim acknowledged records.
func TestCompactionRacesConcurrentAppends(t *testing.T) {
	snaps, recs := extendedChain(t)
	m, _ := mustOpen(t, snaps[0], Config{Dir: t.TempDir(), CompactBytes: 1})

	done := make(chan struct{})
	committable := make(chan *core.Snapshot, len(recs))
	var committed, stale int
	var wg, readerWG sync.WaitGroup
	wg.Add(2)
	readerWG.Add(1)
	go func() { // appender: the single writer the epoch guard demands
		defer wg.Done()
		defer close(committable)
		for i, r := range recs {
			if err := m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			committable <- snaps[i+1]
		}
	}()
	go func() { // compactor: races the appender on every publish
		defer wg.Done()
		for snap := range committable {
			err := m.Committed(snap)
			switch {
			case err == nil:
				committed++
			case strings.Contains(err.Error(), "does not cover"):
				stale++ // the appender moved on; the checkpoint was refused
			default:
				t.Errorf("committed(epoch %d): %v", snap.Epoch(), err)
			}
		}
	}()
	go func() { // readers: epoch and stats must be safe mid-race
		defer readerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = m.Epoch()
				_ = m.Stats()
			}
		}
	}()
	wg.Wait()
	close(done)
	readerWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The final snapshot always commits: the appender is done, so its epoch
	// matches the acknowledged one.
	if committed == 0 {
		t.Fatal("no Committed call ever compacted")
	}
	st := m.Stats()
	if st.Epoch != uint64(len(recs)) || st.Appends != int64(len(recs)) {
		t.Fatalf("stats after race: %+v, want epoch/appends %d", st, len(recs))
	}
	if st.Broken {
		t.Fatal("log broken by a lost compaction race")
	}
	if st.Checkpoints != int64(committed) {
		t.Fatalf("%d checkpoints recorded, %d Committed calls compacted", st.Checkpoints, committed)
	}
	t.Logf("race outcome: %d compactions, %d stale refusals", committed, stale)
	m.Close()

	// Whatever interleaving ran, restart recovers the full chain.
	_, snap := mustOpen(t, snaps[0], Config{Dir: m.cfg.Dir})
	if snap.Epoch() != uint64(len(recs)) {
		t.Fatalf("recovered epoch %d, want %d", snap.Epoch(), len(recs))
	}
	if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[len(recs)])) {
		t.Fatal("recovered state diverges after the race")
	}
}

// TestCrashMidCompactionUnderRacingAppends combines the two failure axes: a
// FaultFS crash point fires somewhere inside the append/compact interleaving
// (mid-compaction fsyncs, the checkpoint rename, the dir sync, and a sweep of
// power-cut positions), while appends race compactions exactly as above.
// Wherever the fault lands, a clean restart must recover exactly the epochs
// the appender saw acknowledged — never more, never fewer.
func TestCrashMidCompactionUnderRacingAppends(t *testing.T) {
	snaps, recs := extendedChain(t)
	refs := make([][]byte, len(snaps))
	for i, sn := range snaps {
		refs[i] = encodeSnap(t, sn)
	}

	// Counting pass: the same workload single-threaded and fault-free, to
	// learn how many syncs/renames/dir-syncs/bytes one run performs. The
	// concurrent runs do at most this much work, so aiming one fault at each
	// op index covers every crash point some schedule can reach.
	probe := chaos.NewFaultFS(chaos.OSFS(), chaos.FSPlan{})
	mc, _, err := Open(snaps[0], Config{Dir: t.TempDir(), FS: probe, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := mc.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); err != nil {
			t.Fatal(err)
		}
		if err := mc.Committed(snaps[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	mc.Close()
	ops := probe.Ops()
	if ops.Syncs == 0 || ops.Renames == 0 || ops.SyncDirs == 0 || ops.WriteBytes == 0 {
		t.Fatalf("counting pass saw no ops: %+v", ops)
	}

	type plan struct {
		name string
		p    chaos.FSPlan
	}
	var plans []plan
	for i := 1; i <= ops.Syncs; i += 3 {
		plans = append(plans, plan{fmt.Sprintf("fail-sync-%d", i), chaos.FSPlan{FailSync: i}})
	}
	for i := 1; i <= ops.Renames; i += 2 {
		plans = append(plans, plan{fmt.Sprintf("fail-rename-%d", i), chaos.FSPlan{FailRename: i}})
	}
	for i := 1; i <= ops.SyncDirs; i += 2 {
		plans = append(plans, plan{fmt.Sprintf("fail-syncdir-%d", i), chaos.FSPlan{FailSyncDir: i}})
	}
	stride := ops.WriteBytes / 11
	if stride < 1 {
		stride = 1
	}
	for c := int64(1); c <= ops.WriteBytes; c += stride {
		plans = append(plans, plan{fmt.Sprintf("power-cut-%d", c), chaos.FSPlan{CutAtByte: c}})
	}

	for _, pl := range plans {
		t.Run(pl.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := chaos.NewFaultFS(chaos.OSFS(), pl.p)
			m, _, err := Open(snaps[0], Config{Dir: dir, FS: ffs, CompactBytes: 1})
			if err != nil {
				t.Fatalf("open under plan: %v", err)
			}

			committable := make(chan *core.Snapshot, len(recs))
			var acked uint64
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // appender: retry once past a one-shot fault, stop on a broken log
				defer wg.Done()
				defer close(committable)
				for i, r := range recs {
					var aerr error
					for attempt := 0; attempt < 2; attempt++ {
						if aerr = m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); aerr == nil {
							break
						}
						if errors.Is(aerr, ErrLogBroken) {
							return
						}
					}
					if aerr != nil {
						return
					}
					acked++
					committable <- snaps[i+1]
				}
			}()
			go func() { // compactor: compaction failure is operational noise, not data loss
				defer wg.Done()
				for snap := range committable {
					_ = m.Committed(snap)
				}
			}()
			wg.Wait()
			m.Close()

			// Clean restart: every acknowledged record survives. Under a
			// power cut one lost-ack record is admissible — the compactor's
			// tmp write can trip the cut between the appender's frame write
			// and its fsync, leaving a complete, replayable frame whose ack
			// never returned — but never more than one, and never a torn or
			// fabricated state.
			maxEpoch := acked
			if pl.p.CutAtByte > 0 && acked < uint64(len(recs)) {
				maxEpoch = acked + 1
			}
			m2, snap, err := Open(snaps[0], Config{Dir: dir})
			if err != nil {
				t.Fatalf("recovery after %q (acked %d): %v", pl.name, acked, err)
			}
			defer m2.Close()
			if snap.Epoch() < acked || snap.Epoch() > maxEpoch {
				t.Fatalf("recovered epoch %d, want %d acked (at most %d)", snap.Epoch(), acked, maxEpoch)
			}
			if !bytes.Equal(encodeSnap(t, snap), refs[snap.Epoch()]) {
				t.Fatalf("recovered state diverges from epoch %d", snap.Epoch())
			}
			// And the survivor still checkpoints cleanly.
			if err := m2.Checkpoint(snap); err != nil {
				t.Fatalf("post-recovery checkpoint: %v", err)
			}
		})
	}
}
