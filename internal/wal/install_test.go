package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManagerInstall proves the staged-commit contract: Install makes the
// candidate the durable state wholesale — skipping intermediate epochs the
// leader never appended — and the next recovery returns it byte-identically
// with an empty log.
func TestManagerInstall(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	appendRecs(t, m, recs[:1]) // acknowledged epoch 1

	if err := m.Install(snaps[3]); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != 3 {
		t.Fatalf("epoch after install = %d, want 3", got)
	}
	if st := m.Stats(); st.LogBytes != 0 {
		t.Fatalf("log not trimmed by install: %d bytes", st.LogBytes)
	}
	// The epoch-1 append is now stale; the next append must continue from 3.
	if err := m.Append(recs[1].Name, recs[1].LabelWeights, recs[1].PrunedVec, recs[1].Epoch); err == nil {
		t.Fatal("append below installed epoch succeeded")
	}
	m.Close()

	m2, rec, err := Open(snaps[0], Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !bytes.Equal(encodeSnap(t, rec), encodeSnap(t, snaps[3])) {
		t.Fatal("recovered state differs from installed candidate")
	}
	if data, err := os.ReadFile(filepath.Join(dir, logName)); err != nil || len(data) != 0 {
		t.Fatalf("log after install = %d bytes (err %v), want empty", len(data), err)
	}
}

// TestManagerInstallRefusesRewind: a candidate below the acknowledged epoch
// would forget durable state, so Install fails and the state is untouched.
func TestManagerInstallRefusesRewind(t *testing.T) {
	snaps, recs := fixture(t)
	dir := t.TempDir()
	m, _ := mustOpen(t, snaps[0], Config{Dir: dir})
	appendRecs(t, m, recs) // acknowledged epoch 3

	err := m.Install(snaps[1])
	if err == nil || !strings.Contains(err.Error(), "rewind") {
		t.Fatalf("install rewind = %v, want rewind refusal", err)
	}
	if got := m.Epoch(); got != 3 {
		t.Fatalf("epoch after refused install = %d, want 3", got)
	}
	m.Close()

	m2, rec, err := Open(snaps[0], Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !bytes.Equal(encodeSnap(t, rec), encodeSnap(t, snaps[3])) {
		t.Fatal("refused install corrupted durable state")
	}
}
