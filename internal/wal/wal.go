// Package wal is the durable-state subsystem of the serving layer. The
// paper's Data Collector persists every profiling sample to MySQL precisely
// so knowledge survives sessions (Section 4.1); this package gives the
// in-memory serving snapshot the same property: every absorbed target
// workload is appended to a write-ahead log and fsynced *before* the snapshot
// hot-swap publishes it, and a periodic compaction folds the log into a
// checksummed checkpoint. A process that crashes — or is killed, or loses
// power mid-write — restarts into exactly the state it had durably
// acknowledged, instead of re-profiling the targets the transfer-learned
// knowledge already paid for.
//
// Durability model (DESIGN.md §11):
//
//   - Log records are length-prefixed, CRC32C-framed JSON. Replay stops at
//     the first bad frame (short header, implausible length, checksum
//     mismatch) and truncates that torn tail: a crash mid-append loses only
//     the unacknowledged record being written.
//   - Checkpoints are whole-state snapshots written write-temp → fsync →
//     rename → fsync(dir), so the installed checkpoint is either the old one
//     or the complete new one. The payload carries its own CRC32C; a
//     mismatch at startup quarantines the file and rebuilds from base + WAL.
//   - Compaction trims the log only after the covering checkpoint is durable
//     (the compaction invariant: checkpoint ∪ log always reproduces every
//     acknowledged record).
//
// All file I/O goes through the chaos.FS seam, so the crash-point matrix in
// the tests can deterministically inject power cuts, failed fsyncs and failed
// renames at every operation.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"vesta/internal/cloud"
)

// Record kinds. The zero value (absorb) is deliberately the empty string:
// records written before catalog updates existed carry no kind field at all,
// and decode as absorbs — the only kind that existed when they were written.
const (
	// KindAbsorb is a workload absorb (core.Snapshot.Absorb).
	KindAbsorb = ""
	// KindCatalog is a catalog update (core.Snapshot.AbsorbCatalog); the
	// Catalog field carries the cloud.Update.
	KindCatalog = "catalog"
)

// Record is one durably logged epoch increment: either a workload absorb
// (exactly the arguments of core.Snapshot.Absorb) or a catalog update
// (the cloud.Update of core.Snapshot.AbsorbCatalog), plus the epoch the
// mutation produced. All payload fields are omitempty so each kind encodes
// only its own fields — an absorb record's bytes are identical to those
// written before the Kind field existed (absorbs always have a non-empty
// name and vectors).
type Record struct {
	Kind         string        `json:"kind,omitempty"`
	Name         string        `json:"name,omitempty"`
	LabelWeights []float64     `json:"label_weights,omitempty"`
	PrunedVec    []float64     `json:"pruned_vec,omitempty"`
	Catalog      *cloud.Update `json:"catalog,omitempty"`
	Epoch        uint64        `json:"epoch"`
}

// Frame layout: uint32 LE payload length, uint32 LE CRC32C of the payload,
// then the JSON payload.
const frameHeaderSize = 8

// maxRecordBytes bounds a frame's declared payload length; anything larger
// is treated as a torn/garbage header, not an allocation request.
const maxRecordBytes = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord marks a frame whose checksum verified but whose payload
// does not decode: the bytes are the bytes that were written, so this is not
// a torn write — it is an unrecoverable log corruption (or a writer bug), and
// recovery refuses to guess.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// encodeFrame renders one record as a framed log entry.
func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// EncodeFrame renders rec in the log's wire framing — exactly the bytes
// Append writes. The replication stream (internal/replicate) ships these
// frames verbatim, so a follower replay verifies the same CRC32C the durable
// log does.
func EncodeFrame(rec Record) ([]byte, error) { return encodeFrame(rec) }

// ScanFrames parses a framed stream into its records plus the byte length of
// the valid prefix (scanLog's torn-tail rule). Recovery tolerates a short
// valid prefix — a torn tail is expected on a crashed log file — but
// replication consumers must fail closed when the valid prefix does not
// cover the whole batch: nothing tears an in-flight replication body.
func ScanFrames(data []byte) ([]Record, int64, error) { return scanLog(data) }

// scanLog parses a log image into its records and the byte length of the
// valid prefix. The torn-tail rule: parsing stops at the first frame whose
// header is short, whose declared length exceeds the remaining bytes (or
// maxRecordBytes), or whose CRC32C mismatches — everything from that offset
// on is an unacknowledged tail to truncate. A CRC-valid frame that fails to
// decode returns ErrCorruptRecord instead: those bytes were durably written,
// so silently dropping them would break the durability contract.
func scanLog(data []byte) ([]Record, int64, error) {
	var recs []Record
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return recs, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxRecordBytes || frameHeaderSize+n > int64(len(rest)) {
			return recs, off, nil
		}
		payload := rest[frameHeaderSize : frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, off, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, fmt.Errorf("%w: frame at byte %d: %v", ErrCorruptRecord, off, err)
		}
		recs = append(recs, rec)
		off += frameHeaderSize + n
	}
}
