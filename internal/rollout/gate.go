package rollout

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"vesta/internal/serve"
)

// replay answers the golden schedule against one node, decoding each
// canonical response body. Any transport or decode failure fails the whole
// replay — a gate cannot pass on partial evidence.
func replay(ctx context.Context, n Node, golden []serve.Request) ([]serve.Response, error) {
	out := make([]serve.Response, len(golden))
	for i, req := range golden {
		body, err := n.Predict(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("golden request %d (%s): %w", i, req.App, err)
		}
		if err := json.Unmarshal(body, &out[i]); err != nil {
			return nil, fmt.Errorf("golden request %d (%s): decoding response: %w", i, req.App, err)
		}
	}
	return out, nil
}

// compareReplay judges a candidate replay against the incumbent baseline:
// the mean relative |Δ predicted_sec| over ranking VMs shared per request
// must stay within maxDev, and the fraction of requests agreeing on the best
// VM must reach minAgree. Returns ok plus a human reason when the budget is
// blown.
func compareReplay(baseline, cand []serve.Response, maxDev, minAgree float64) (bool, string) {
	if len(baseline) != len(cand) {
		return false, fmt.Sprintf("replay length %d vs baseline %d", len(cand), len(baseline))
	}
	if len(baseline) == 0 {
		return false, "empty golden replay"
	}
	agree, shared := 0, 0
	devSum := 0.0
	for i := range baseline {
		b, c := &baseline[i], &cand[i]
		if b.Best == c.Best {
			agree++
		}
		base := make(map[string]float64, len(b.Ranking))
		for _, e := range b.Ranking {
			base[e.VM] = float64(e.PredictedSec)
		}
		for _, e := range c.Ranking {
			bs, ok := base[e.VM]
			if !ok {
				continue
			}
			shared++
			devSum += relDev(bs, float64(e.PredictedSec))
		}
	}
	if shared == 0 {
		return false, "no ranking VMs shared with the baseline"
	}
	meanDev := devSum / float64(shared)
	if math.IsNaN(meanDev) || meanDev > maxDev {
		return false, fmt.Sprintf("mean predicted_sec deviation %.4f exceeds budget %.4f", meanDev, maxDev)
	}
	agreeFrac := float64(agree) / float64(len(baseline))
	if agreeFrac < minAgree {
		return false, fmt.Sprintf("best-VM agreement %.3f below floor %.3f", agreeFrac, minAgree)
	}
	return true, ""
}

// relDev is the relative deviation of cand against base, guarded against a
// zero or non-finite base.
func relDev(base, cand float64) float64 {
	if math.IsNaN(base) || math.IsNaN(cand) || math.IsInf(base, 0) || math.IsInf(cand, 0) {
		return math.Inf(1)
	}
	denom := math.Abs(base)
	if denom < 1e-9 {
		denom = 1e-9
	}
	return math.Abs(cand-base) / denom
}
