package rollout

import (
	"testing"
)

// FuzzRolloutManifest hammers the strict JSON manifest boundary: arbitrary
// bytes never panic, and anything ParseManifest accepts re-validates, stays
// inside the documented bounds, and derives its golden schedule
// deterministically. Checked-in corpus: testdata/fuzz/FuzzRolloutManifest.
func FuzzRolloutManifest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":"v2","stages":[1,3,7],"golden_seed":9,"golden_requests":16,"max_deviation":0.1,"min_best_agreement":0.8,"gate_timeout_sec":10}`))
	f.Add([]byte(`{"stages":[1],"apps":["Spark-kmeans","Hadoop-terasort"]}`))
	f.Add([]byte(`{"stages":[2,1]}`))
	f.Add([]byte(`{"max_deviation":1e308}`))
	f.Add([]byte(`{"golden_requests":-1}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted manifest fails Validate: %v", verr)
		}
		if m.GoldenRequests < 1 || m.GoldenRequests > maxGoldenRequests {
			t.Fatalf("accepted golden_requests %d outside bounds", m.GoldenRequests)
		}
		if len(m.Stages) == 0 || len(m.Stages) > maxStages {
			t.Fatalf("accepted %d stages outside bounds", len(m.Stages))
		}
		// Only derive bounded schedules: the golden replay is ~8x
		// GoldenRequests arrivals and the gate caps it anyway.
		if m.GoldenRequests > 64 {
			return
		}
		a, err := m.Golden()
		if err != nil {
			t.Fatalf("valid manifest failed to derive golden schedule: %v", err)
		}
		b, err := m.Golden()
		if err != nil {
			t.Fatalf("second golden derivation failed: %v", err)
		}
		if len(a) != m.GoldenRequests || len(a) != len(b) {
			t.Fatalf("golden lengths %d/%d, want %d", len(a), len(b), m.GoldenRequests)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("golden schedule not deterministic")
			}
			if a[i].App == "" {
				t.Fatalf("golden request %d has no app", i)
			}
		}
	})
}
