package rollout

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/serve"
)

// TestRolloutOverHTTP drives the coordinator through real HTTP transports:
// /rollout control verbs, /healthz probes, and /predict golden replays. One
// clean commit, then a replay-regression rollback, both asserted on the
// in-process servers behind the endpoints.
func TestRolloutOverHTTP(t *testing.T) {
	snaps := fixture(t)
	incumbent := encodeSnap(t, snaps[0])
	candidate := encodeSnap(t, snaps[1])

	run := func(plan chaos.RolloutPlan) (*Outcome, []*serve.Server) {
		t.Helper()
		mk := func(readOnly bool) *serve.Server {
			srv, err := serve.New(snaps[0], serve.Config{
				Workers: 1, QueueSize: 64, ReadOnly: readOnly, RolloutControl: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(srv.Close)
			return srv
		}
		leaderSrv := mk(false)
		lts := httptest.NewServer(leaderSrv.Handler())
		t.Cleanup(lts.Close)
		servers := []*serve.Server{leaderSrv}
		var followers []Node
		for i := 0; i < 2; i++ {
			srv := mk(true)
			servers = append(servers, srv)
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			followers = append(followers, NewHTTPNode("follower", ts.URL))
		}
		dir := t.TempDir()
		j, prior := newJournal(t, dir)
		c, err := New(Config{
			Manifest:  matrixManifest(),
			Candidate: candidate,
			Leader:    NewHTTPNode("leader", lts.URL),
			Followers: followers,
			Journal:   j,
			Prior:     prior,
			Hooks:     PlanHooks(plan),
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out, servers
	}

	out, servers := run(chaos.RolloutPlan{})
	if !out.Committed {
		t.Fatalf("clean HTTP rollout rolled back: %s", out.Reason)
	}
	if !strings.HasPrefix(out.Version, "sha256-") {
		t.Fatalf("derived version = %q, want sha256 prefix", out.Version)
	}
	for i, srv := range servers {
		if got := encodeSnap(t, srv.Snapshot()); !bytes.Equal(got, candidate) {
			t.Fatalf("HTTP fleet member %d not on candidate after commit", i)
		}
		if v := srv.CommittedVersion(); v != out.Version {
			t.Fatalf("HTTP fleet member %d committed %q, want %q", i, v, out.Version)
		}
	}

	out, servers = run(chaos.RolloutPlan{ReplayFails: []chaos.NodeStage{{Node: 1, Stage: 2}}})
	if out.Committed {
		t.Fatal("injected replay regression committed over HTTP")
	}
	for i, srv := range servers {
		if got := encodeSnap(t, srv.Snapshot()); !bytes.Equal(got, incumbent) {
			t.Fatalf("HTTP fleet member %d not restored to incumbent after rollback", i)
		}
		if v := srv.StagedVersion(); v != "" {
			t.Fatalf("HTTP fleet member %d still staged on %q", i, v)
		}
	}
}
