package rollout

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/serve"
	"vesta/internal/sim"
	"vesta/internal/wal"
	"vesta/internal/workload"
)

var (
	fixOnce  sync.Once
	fixErr   error
	fixSnaps []*core.Snapshot // epochs 0 (incumbent base) .. 3
)

// fixture trains one system and pre-computes a three-absorb chain: snaps[0]
// is the fleet's incumbent, later epochs are rollout candidates.
func fixture(t testing.TB) []*core.Snapshot {
	t.Helper()
	fixOnce.Do(func() {
		sys, err := core.New(core.Config{Seed: 1}, cloud.Catalog120())
		if err != nil {
			fixErr = err
			return
		}
		meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
			fixErr = err
			return
		}
		base, err := sys.Snapshot()
		if err != nil {
			fixErr = err
			return
		}
		fixSnaps = []*core.Snapshot{base}
		cur := base
		for i, appName := range []string{"Spark-kmeans", "Spark-sort", "Spark-grep"} {
			app, err := workload.ByName(appName)
			if err != nil {
				fixErr = err
				return
			}
			pred, err := cur.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), uint64(100+i)))
			if err != nil {
				fixErr = err
				return
			}
			next, err := cur.Absorb(fmt.Sprintf("target-%d", i+1), pred.LabelWeights, pred.PrunedVec)
			if err != nil {
				fixErr = err
				return
			}
			fixSnaps = append(fixSnaps, next)
			cur = next
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixSnaps
}

// encodeSnap returns the snapshot's deterministic serialization — the state
// fingerprint every convergence assertion compares.
func encodeSnap(t testing.TB, sn *core.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fleet is one leader plus followers, all serving the same incumbent.
type fleet struct {
	leader    *ServeNode
	followers []Node
}

// newFleet builds an in-process fleet over the incumbent: a writable leader
// and n read-only follower replicas.
func newFleet(t testing.TB, incumbent *core.Snapshot, n int) *fleet {
	t.Helper()
	mk := func(readOnly bool) *serve.Server {
		srv, err := serve.New(incumbent, serve.Config{Workers: 1, QueueSize: 64, ReadOnly: readOnly})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return srv
	}
	fl := &fleet{leader: NewServeNode("leader", mk(false))}
	for i := 0; i < n; i++ {
		fl.followers = append(fl.followers, NewServeNode(fmt.Sprintf("follower-%d", i), mk(true)))
	}
	return fl
}

// servers returns every fleet member's server, leader first.
func (fl *fleet) servers() []*serve.Server {
	out := []*serve.Server{fl.leader.Server()}
	for _, n := range fl.followers {
		out = append(out, n.(*ServeNode).Server())
	}
	return out
}

// assertConverged fails unless every fleet member's snapshot is
// byte-identical to want — the "exactly one version, never mixed" invariant.
func (fl *fleet) assertConverged(t testing.TB, want []byte, label string) {
	t.Helper()
	for i, srv := range fl.servers() {
		if got := encodeSnap(t, srv.Snapshot()); !bytes.Equal(got, want) {
			t.Fatalf("%s: fleet member %d snapshot diverges from the expected version", label, i)
		}
		if v := srv.StagedVersion(); v != "" {
			t.Fatalf("%s: fleet member %d still staged on %q at terminal state", label, i, v)
		}
	}
}

// newJournal opens a rollout journal under dir and returns it with any
// recovered decisions.
func newJournal(t testing.TB, dir string) (*wal.Journal, [][]byte) {
	t.Helper()
	j, prior, err := wal.OpenJournal(filepath.Join(dir, "rollout.journal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, prior
}

// journalOps reopens the journal file and parses its decisions — what a
// resumed coordinator would see.
func journalOps(t testing.TB, dir string) []decision {
	t.Helper()
	j, prior, err := wal.OpenJournal(filepath.Join(dir, "rollout.journal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	out := make([]decision, len(prior))
	for i, raw := range prior {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			t.Fatalf("journal entry %d: %v", i, err)
		}
	}
	return out
}

// matrixManifest is the promotion schedule the convergence matrix drives:
// canary (1), partial (2), full (3 followers), with budgets wide enough that
// the honest fixture candidate passes — TestMatrixBudgetsHoldForCleanCandidate
// pins that — so only injected faults fail gates.
func matrixManifest() Manifest {
	return Manifest{
		Stages:           []int{1, 2},
		GoldenSeed:       7,
		GoldenRequests:   6,
		MaxDeviation:     2,
		MinBestAgreement: 0.01,
		GateTimeoutSec:   120,
	}
}
