package rollout

import (
	"context"
	"strings"
	"testing"

	"vesta/internal/serve"
)

func TestParseManifestStrict(t *testing.T) {
	m, err := ParseManifest([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stages) != 1 || m.Stages[0] != 1 || m.GoldenRequests != 32 ||
		m.MaxDeviation != 0.05 || m.MinBestAgreement != 0.9 || m.GateTimeoutSec != 30 {
		t.Fatalf("defaults = %+v", m)
	}
	for _, bad := range []string{
		`{"stages":[2,1]}`,          // not increasing
		`{"stages":[0]}`,            // non-positive
		`{"unknown_field":1}`,       // strict decode
		`{"stages":[1]} trailing`,   // trailing garbage
		`{"golden_requests":-3}`,    // out of range
		`{"golden_requests":99999}`, // beyond cap
		`{"max_deviation":-0.5}`,
		`{"min_best_agreement":1.5}`,
		`{"gate_timeout_sec":-1}`,
		`{"apps":["NoSuchApp"]}`,
		`not json`,
	} {
		if _, err := ParseManifest([]byte(bad)); err == nil {
			t.Fatalf("ParseManifest(%q) accepted", bad)
		}
	}
}

func TestGoldenDeterministicAndBounded(t *testing.T) {
	m := Manifest{GoldenSeed: 9, GoldenRequests: 16, Apps: []string{"Spark-kmeans", "Spark-sort"}}
	a, err := m.Golden()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Golden()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 16 {
		t.Fatalf("golden length = %d, want 16", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("golden request %d differs between derivations: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].App != "Spark-kmeans" && a[i].App != "Spark-sort" {
			t.Fatalf("golden request %d app %q outside manifest apps", i, a[i].App)
		}
	}
}

func TestCompareReplay(t *testing.T) {
	base := []serve.Response{{
		Best: "m4.xlarge",
		Ranking: []serve.RankEntry{
			{VM: "m4.xlarge", PredictedSec: 100},
			{VM: "c4.large", PredictedSec: 200},
		},
	}}
	same := []serve.Response{{
		Best: "m4.xlarge",
		Ranking: []serve.RankEntry{
			{VM: "m4.xlarge", PredictedSec: 101},
			{VM: "c4.large", PredictedSec: 202},
		},
	}}
	if ok, reason := compareReplay(base, same, 0.05, 1); !ok {
		t.Fatalf("1%% deviation rejected under 5%% budget: %s", reason)
	}
	if ok, _ := compareReplay(base, same, 0.001, 1); ok {
		t.Fatal("1% deviation accepted under 0.1% budget")
	}
	flipped := []serve.Response{{
		Best: "c4.large",
		Ranking: []serve.RankEntry{
			{VM: "m4.xlarge", PredictedSec: 100},
			{VM: "c4.large", PredictedSec: 200},
		},
	}}
	if ok, reason := compareReplay(base, flipped, 0.05, 0.9); ok || !strings.Contains(reason, "agreement") {
		t.Fatalf("best flip passed (ok=%v reason=%q)", ok, reason)
	}
	disjoint := []serve.Response{{
		Best:    "m4.xlarge",
		Ranking: []serve.RankEntry{{VM: "r3.large", PredictedSec: 5}},
	}}
	if ok, _ := compareReplay(base, disjoint, 10, 0); ok {
		t.Fatal("disjoint rankings passed")
	}
	if ok, _ := compareReplay(base, nil, 10, 0); ok {
		t.Fatal("length mismatch passed")
	}
}

// TestMatrixBudgetsHoldForCleanCandidate pins the matrix fixture's honest
// gate numbers: the epoch-1 candidate replayed against the epoch-0 incumbent
// stays inside the matrix manifest budgets. If model changes push the real
// deviation past them, this test names the problem before the matrix flakes.
func TestMatrixBudgetsHoldForCleanCandidate(t *testing.T) {
	snaps := fixture(t)
	fl := newFleet(t, snaps[0], 1)
	m := matrixManifest().withDefaults()
	golden, err := m.Golden()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := replay(ctx, fl.leader, golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.followers[0].Stage(ctx, "v1", encodeSnap(t, snaps[1])); err != nil {
		t.Fatal(err)
	}
	cand, err := replay(ctx, fl.followers[0], golden)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := compareReplay(base, cand, m.MaxDeviation, m.MinBestAgreement); !ok {
		t.Fatalf("clean candidate blows matrix budgets: %s", reason)
	}
}
