package rollout

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"vesta/internal/chaos"
	"vesta/internal/serve"
	"vesta/internal/wal"
)

// Hooks are the coordinator's chaos points, addressed by (0-based follower
// index, 1-based stage) exactly like chaos.RolloutPlan cells. Nil members
// inject nothing.
type Hooks struct {
	// StageErr fires before a node's candidate push; a non-nil error models
	// the push never landing.
	StageErr func(node, stage int) error
	// HealthErr fires before a node's gate health probe; a non-nil error
	// models a post-stage flap.
	HealthErr func(node, stage int) error
	// ReplayCorrupt fires before a node's golden replay; true models a model
	// regression deviating beyond every budget.
	ReplayCorrupt func(node, stage int) bool
	// AfterDecision fires immediately after journal decision index (1-based,
	// counting recovered entries) is durable and before it is acted on; a
	// non-nil error kills the coordinator at the worst possible point.
	AfterDecision func(index int, op string) error
}

// errHealthFlap is the injected health-probe failure PlanHooks raises.
var errHealthFlap = errors.New("chaos: injected health-probe flap")

// PlanHooks compiles a chaos.RolloutPlan into the coordinator's fault hooks.
func PlanHooks(plan chaos.RolloutPlan) Hooks {
	return Hooks{
		StageErr: func(node, stage int) error {
			if plan.StageFailed(node, stage) {
				return chaos.ErrStageFault
			}
			return nil
		},
		HealthErr: func(node, stage int) error {
			if plan.HealthFailed(node, stage) {
				return errHealthFlap
			}
			return nil
		},
		ReplayCorrupt: plan.ReplayFailed,
		AfterDecision: func(index int, _ string) error {
			if plan.CoordinatorKilled(index) {
				return chaos.ErrCoordinatorKilled
			}
			return nil
		},
	}
}

// Config assembles one rollout run.
type Config struct {
	// Manifest is the promotion schedule and gate budgets; zero gate fields
	// take defaults.
	Manifest Manifest
	// Candidate is the encoded candidate snapshot (core.Snapshot.Encode) —
	// the coordinator ships it opaque and never decodes it.
	Candidate []byte
	// Version overrides the manifest version; empty derives
	// "sha256-<prefix>" from Candidate.
	Version string
	// Leader is the durable head of the fleet: the golden baseline source,
	// staged and committed first so follower consistency tokens never run
	// ahead of it.
	Leader Node
	// Followers is the fleet in promotion order; stage counts index into it.
	Followers []Node
	// Journal records every decision before it is acted on.
	Journal *wal.Journal
	// Prior is the decision payloads recovered by wal.OpenJournal; a
	// non-empty slice resumes the rollout they describe.
	Prior [][]byte
	// Hooks inject faults (zero value: none).
	Hooks Hooks
	// Logf, when set, narrates decisions (the CLI wires it to stderr).
	Logf func(format string, args ...any)
}

// Outcome is a rollout's terminal state.
type Outcome struct {
	Version string `json:"version"`
	// Committed: true means the fleet runs the candidate durably; false
	// means it was rolled back to the incumbent, with Reason saying why.
	Committed bool   `json:"committed"`
	Reason    string `json:"reason,omitempty"`
	// Resumed reports whether this run continued a recovered journal.
	Resumed bool `json:"resumed"`
	// Decisions is the total journal length at the terminal state.
	Decisions int `json:"decisions"`
}

// decision is one journaled coordinator step. Ops: "begin", "stage" (intent
// to push the stage's wave), "gate" (the stage's verdict), "commit" and
// "rollback" (terminal intents), "done" (terminal state; Pass mirrors
// Committed). Every op is journaled before it is acted on, so the journal's
// last entry always names the exact step a crashed coordinator must redo.
type decision struct {
	Op      string `json:"op"`
	Version string `json:"version"`
	Stage   int    `json:"stage,omitempty"`
	Pass    bool   `json:"pass,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// Coordinator drives one health-gated rollout to a terminal state.
type Coordinator struct {
	cfg       Config
	manifest  Manifest
	version   string
	stages    []int // effective cumulative counts; last == len(followers)
	golden    []serve.Request
	baseline  []serve.Response // incumbent replay, captured at first gate
	decisions int              // journal length including recovered entries
}

// New validates the config and prepares a coordinator. The golden schedule
// is derived eagerly so a bad manifest fails before anything is staged.
func New(cfg Config) (*Coordinator, error) {
	m := cfg.Manifest.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.Leader == nil {
		return nil, fmt.Errorf("rollout: nil leader")
	}
	if len(cfg.Candidate) == 0 {
		return nil, fmt.Errorf("rollout: empty candidate")
	}
	if cfg.Journal == nil {
		return nil, fmt.Errorf("rollout: nil journal")
	}
	version := cfg.Version
	if version == "" {
		version = m.Version
	}
	if version == "" {
		sum := sha256.Sum256(cfg.Candidate)
		version = fmt.Sprintf("sha256-%x", sum[:6])
	}
	golden, err := m.Golden()
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:       cfg,
		manifest:  m,
		version:   version,
		stages:    effectiveStages(m.Stages, len(cfg.Followers)),
		golden:    golden,
		decisions: len(cfg.Prior),
	}, nil
}

// Version returns the resolved candidate version.
func (c *Coordinator) Version() string { return c.version }

// effectiveStages clamps the manifest's cumulative counts to the fleet size
// and forces the final stage to cover every follower, so a manifest written
// for a larger fleet still promotes everyone exactly once.
func effectiveStages(stages []int, followers int) []int {
	if followers == 0 {
		return nil
	}
	out := make([]int, 0, len(stages)+1)
	for _, s := range stages {
		if s >= followers {
			break
		}
		out = append(out, s)
	}
	return append(out, followers)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// record journals one decision, then offers the chaos kill point.
func (c *Coordinator) record(d decision) error {
	data, err := json.Marshal(d)
	if err != nil {
		return err
	}
	if err := c.cfg.Journal.Append(data); err != nil {
		return fmt.Errorf("rollout: journaling %s: %w", d.Op, err)
	}
	c.decisions++
	c.logf("rollout %s: decision %d: %s stage=%d pass=%v %s",
		c.version, c.decisions, d.Op, d.Stage, d.Pass, d.Reason)
	if h := c.cfg.Hooks.AfterDecision; h != nil {
		if err := h(c.decisions, d.Op); err != nil {
			return fmt.Errorf("rollout: after decision %d (%s): %w", c.decisions, d.Op, err)
		}
	}
	return nil
}

// resumeState is where a run picks up, derived purely from the journal tail.
type resumeState struct {
	mode       string // "stage" | "commit" | "rollback" | "done"
	stage      int    // first stage to run (mode "stage")
	intentDone bool   // the stage intent for .stage is already journaled
	committed  bool   // terminal verdict (mode "done")
	reason     string
}

// resumePoint parses the recovered journal and names the next step. The
// journal is append-only and every op is journaled before it is acted on, so
// the last entry alone determines the continuation.
func (c *Coordinator) resumePoint() (resumeState, error) {
	if len(c.cfg.Prior) == 0 {
		return resumeState{mode: "stage", stage: 1}, nil
	}
	var last decision
	for i, raw := range c.cfg.Prior {
		var d decision
		if err := json.Unmarshal(raw, &d); err != nil {
			return resumeState{}, fmt.Errorf("rollout: corrupt journal entry %d: %w", i, err)
		}
		if d.Version != c.version {
			return resumeState{}, fmt.Errorf("rollout: journal holds rollout of version %q, not %q", d.Version, c.version)
		}
		last = d
	}
	switch last.Op {
	case "begin":
		return resumeState{mode: "stage", stage: 1}, nil
	case "stage":
		// Intent journaled; the wave itself may or may not have landed.
		// Staging is idempotent per version, so redo it.
		return resumeState{mode: "stage", stage: last.Stage, intentDone: true}, nil
	case "gate":
		if !last.Pass {
			return resumeState{mode: "rollback", reason: last.Reason}, nil
		}
		if last.Stage >= len(c.stages) {
			return resumeState{mode: "commit"}, nil
		}
		return resumeState{mode: "stage", stage: last.Stage + 1}, nil
	case "commit":
		return resumeState{mode: "commit", intentDone: true}, nil
	case "rollback":
		return resumeState{mode: "rollback", intentDone: true, reason: last.Reason}, nil
	case "done":
		return resumeState{mode: "done", committed: last.Pass, reason: last.Reason}, nil
	default:
		return resumeState{}, fmt.Errorf("rollout: unknown journal op %q", last.Op)
	}
}

// Run drives the rollout to its terminal state: every follower stage pushed
// and gated, then a leader-first commit — or a fleet-wide rollback the
// moment any gate fails. With a recovered journal it resumes from the last
// recorded decision instead of starting over. The returned error is non-nil
// only when the run could not reach a terminal state (journal failure,
// injected coordinator kill, context cancellation); the journal then holds
// the resume point.
func (c *Coordinator) Run(ctx context.Context) (*Outcome, error) {
	rs, err := c.resumePoint()
	if err != nil {
		return nil, err
	}
	out := &Outcome{Version: c.version, Resumed: len(c.cfg.Prior) > 0}
	switch rs.mode {
	case "done":
		out.Committed, out.Reason, out.Decisions = rs.committed, rs.reason, c.decisions
		return out, nil
	case "commit":
		return c.commitPhase(ctx, out, rs.intentDone)
	case "rollback":
		return c.rollbackPhase(ctx, out, rs.reason, rs.intentDone)
	}
	if len(c.cfg.Prior) == 0 {
		if err := c.record(decision{Op: "begin", Version: c.version}); err != nil {
			return nil, err
		}
	}
	intentDone := rs.intentDone
	for si := rs.stage; si <= len(c.stages); si++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !intentDone {
			if err := c.record(decision{Op: "stage", Version: c.version, Stage: si}); err != nil {
				return nil, err
			}
		}
		intentDone = false
		if err := c.stageWave(ctx, si); err != nil {
			return c.rollbackPhase(ctx, out, fmt.Sprintf("stage %d: %v", si, err), false)
		}
		pass, reason := c.gate(ctx, si)
		if err := c.record(decision{Op: "gate", Version: c.version, Stage: si, Pass: pass, Reason: reason}); err != nil {
			return nil, err
		}
		if !pass {
			return c.rollbackPhase(ctx, out, reason, false)
		}
	}
	return c.commitPhase(ctx, out, false)
}

// stageWave pushes the candidate to stage si's new followers.
func (c *Coordinator) stageWave(ctx context.Context, si int) error {
	prev := 0
	if si > 1 {
		prev = c.stages[si-2]
	}
	for idx := prev; idx < c.stages[si-1]; idx++ {
		n := c.cfg.Followers[idx]
		if h := c.cfg.Hooks.StageErr; h != nil {
			if err := h(idx, si); err != nil {
				return fmt.Errorf("node %s: %w", n.Name(), err)
			}
		}
		if err := n.Stage(ctx, c.version, c.cfg.Candidate); err != nil {
			return fmt.Errorf("node %s: %w", n.Name(), err)
		}
	}
	return nil
}

// gate judges stage si: every follower staged so far (not just this wave —
// a canary that flaps during a later wave must still stop the rollout) must
// pass the health probe and replay the golden schedule within budget against
// the incumbent baseline. The baseline is captured from the leader at the
// first gate of the run; the leader is not staged until commit, so a resumed
// run recaptures the identical incumbent replay.
func (c *Coordinator) gate(ctx context.Context, si int) (bool, string) {
	gctx, cancel := context.WithTimeout(ctx, time.Duration(c.manifest.GateTimeoutSec*float64(time.Second)))
	defer cancel()
	if c.baseline == nil {
		base, err := replay(gctx, c.cfg.Leader, c.golden)
		if err != nil {
			return false, fmt.Sprintf("baseline replay against leader %s: %v", c.cfg.Leader.Name(), err)
		}
		c.baseline = base
	}
	for idx := 0; idx < c.stages[si-1]; idx++ {
		n := c.cfg.Followers[idx]
		if h := c.cfg.Hooks.HealthErr; h != nil {
			if err := h(idx, si); err != nil {
				return false, fmt.Sprintf("health probe %s: %v", n.Name(), err)
			}
		}
		if err := n.Health(gctx); err != nil {
			return false, fmt.Sprintf("health probe %s: %v", n.Name(), err)
		}
		if h := c.cfg.Hooks.ReplayCorrupt; h != nil && h(idx, si) {
			return false, fmt.Sprintf("golden replay %s: injected deviation beyond budget", n.Name())
		}
		resp, err := replay(gctx, n, c.golden)
		if err != nil {
			return false, fmt.Sprintf("golden replay %s: %v", n.Name(), err)
		}
		if ok, reason := compareReplay(c.baseline, resp, c.manifest.MaxDeviation, c.manifest.MinBestAgreement); !ok {
			return false, fmt.Sprintf("golden replay %s: %s", n.Name(), reason)
		}
	}
	return true, ""
}

// commitPhase makes the candidate durable fleet-wide: the commit intent is
// journaled, then the leader stages and commits first (its WAL adopts the
// candidate), then every follower commits. All verbs are idempotent per
// version, so a crash anywhere in here replays cleanly.
func (c *Coordinator) commitPhase(ctx context.Context, out *Outcome, intentDone bool) (*Outcome, error) {
	if !intentDone {
		if err := c.record(decision{Op: "commit", Version: c.version}); err != nil {
			return nil, err
		}
	}
	if err := c.cfg.Leader.Stage(ctx, c.version, c.cfg.Candidate); err != nil {
		return nil, fmt.Errorf("rollout: staging leader %s at commit: %w", c.cfg.Leader.Name(), err)
	}
	if err := c.cfg.Leader.Commit(ctx, c.version); err != nil {
		return nil, fmt.Errorf("rollout: committing leader %s: %w", c.cfg.Leader.Name(), err)
	}
	for _, n := range c.cfg.Followers {
		if err := n.Commit(ctx, c.version); err != nil {
			return nil, fmt.Errorf("rollout: committing %s: %w", n.Name(), err)
		}
	}
	if err := c.record(decision{Op: "done", Version: c.version, Pass: true}); err != nil {
		return nil, err
	}
	out.Committed, out.Decisions = true, c.decisions
	return out, nil
}

// rollbackPhase abandons the candidate: the intent is journaled with the
// gate's reason, then every follower reverts to the incumbent (a no-op on
// nodes the rollout never reached). The leader is untouched — it stages only
// at commit, which this path never reaches.
func (c *Coordinator) rollbackPhase(ctx context.Context, out *Outcome, reason string, intentDone bool) (*Outcome, error) {
	if !intentDone {
		if err := c.record(decision{Op: "rollback", Version: c.version, Reason: reason}); err != nil {
			return nil, err
		}
	}
	for _, n := range c.cfg.Followers {
		if err := n.Revert(ctx, c.version); err != nil {
			return nil, fmt.Errorf("rollout: reverting %s: %w", n.Name(), err)
		}
	}
	if err := c.record(decision{Op: "done", Version: c.version, Reason: reason}); err != nil {
		return nil, err
	}
	out.Committed, out.Reason, out.Decisions = false, reason, c.decisions
	return out, nil
}
