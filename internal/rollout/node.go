package rollout

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"vesta/internal/serve"
)

// Node is one fleet member as the coordinator sees it: a name for journal
// and log lines, the mender-style two-phase switch verbs, and the two gate
// probes. Stage, Commit, and Revert are idempotent per version — the
// coordinator replays them freely after a crash.
type Node interface {
	Name() string
	// Health is the liveness/durability probe: nil means the node may carry
	// the staged candidate forward.
	Health(ctx context.Context) error
	// Stage publishes the encoded candidate uncommitted: the node serves it
	// but nothing durable changes, and Revert restores the incumbent
	// bit-for-bit.
	Stage(ctx context.Context, version string, candidate []byte) error
	// Commit makes the staged version the durable incumbent — the point of
	// no return.
	Commit(ctx context.Context, version string) error
	// Revert abandons the staged version; a no-op if nothing is staged.
	Revert(ctx context.Context, version string) error
	// Predict answers one golden request with the node's canonical response
	// bytes.
	Predict(ctx context.Context, req serve.Request) ([]byte, error)
}

// ServeNode adapts an in-process *serve.Server — the shape the convergence
// matrix drives, with zero transport noise between coordinator and fleet.
type ServeNode struct {
	name string
	srv  *serve.Server
}

// NewServeNode wraps srv as a fleet member named name.
func NewServeNode(name string, srv *serve.Server) *ServeNode {
	return &ServeNode{name: name, srv: srv}
}

// Server returns the wrapped server (tests inspect terminal fleet state).
func (n *ServeNode) Server() *serve.Server { return n.srv }

func (n *ServeNode) Name() string { return n.name }

func (n *ServeNode) Health(ctx context.Context) error {
	return n.srv.HealthErr()
}

func (n *ServeNode) Stage(ctx context.Context, version string, candidate []byte) error {
	return n.srv.StageEncoded(version, candidate)
}

func (n *ServeNode) Commit(ctx context.Context, version string) error {
	return n.srv.CommitStaged(version)
}

func (n *ServeNode) Revert(ctx context.Context, version string) error {
	return n.srv.RevertStaged(version)
}

func (n *ServeNode) Predict(ctx context.Context, req serve.Request) ([]byte, error) {
	return n.srv.PredictBytes(ctx, req)
}

// HTTPNode drives a remote vesta serve process through its HTTP surface:
// /healthz for the probe, the /rollout control plane (requires the node to
// run with rollout control enabled), and /predict for the golden replay.
type HTTPNode struct {
	name   string
	url    string
	client *http.Client
}

// NewHTTPNode addresses a fleet member at baseURL. The client carries no
// timeout of its own; every call is bounded by the caller's context (the
// coordinator's gate timeout).
func NewHTTPNode(name, baseURL string) *HTTPNode {
	return &HTTPNode{name: name, url: strings.TrimRight(baseURL, "/"), client: &http.Client{}}
}

func (n *HTTPNode) Name() string { return n.name }

func (n *HTTPNode) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return fmt.Errorf("rollout: %s health: %w", n.name, err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health); err != nil {
		return fmt.Errorf("rollout: %s health: %w", n.name, err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		return fmt.Errorf("rollout: %s health: status %d %q", n.name, resp.StatusCode, health.Status)
	}
	return nil
}

func (n *HTTPNode) Stage(ctx context.Context, version string, candidate []byte) error {
	_, err := n.post(ctx, "/rollout/stage", rolloutBody{Version: version, Snapshot: candidate})
	return err
}

func (n *HTTPNode) Commit(ctx context.Context, version string) error {
	_, err := n.post(ctx, "/rollout/commit", rolloutBody{Version: version})
	return err
}

func (n *HTTPNode) Revert(ctx context.Context, version string) error {
	_, err := n.post(ctx, "/rollout/revert", rolloutBody{Version: version})
	return err
}

func (n *HTTPNode) Predict(ctx context.Context, req serve.Request) ([]byte, error) {
	return n.post(ctx, "/predict", req)
}

// rolloutBody mirrors the serve /rollout request envelope; Snapshot rides as
// base64 inside the JSON.
type rolloutBody struct {
	Version  string `json:"version"`
	Snapshot []byte `json:"snapshot,omitempty"`
}

func (n *HTTPNode) post(ctx context.Context, path string, body any) ([]byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("rollout: %s %s: %w", n.name, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("rollout: %s %s: %w", n.name, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.Unmarshal(out, &eb)
		if eb.Error == "" {
			eb.Error = strings.TrimSpace(string(out))
		}
		return nil, fmt.Errorf("rollout: %s %s: status %d: %s", n.name, path, resp.StatusCode, eb.Error)
	}
	return out, nil
}
