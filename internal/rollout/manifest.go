// Package rollout is the health-gated fleet-upgrade coordinator (DESIGN.md
// §16). It promotes a candidate snapshot version across a replicated serving
// fleet in stages — canary (one follower), optional partial waves, then the
// full follower set — and gates every stage on two signals: the node health
// probe and a golden predict replay compared against the incumbent within an
// explicit error budget. A failed gate rolls the whole fleet back to the
// incumbent; a passed final gate commits leader-first so follower consistency
// tokens never run ahead of the durable leader state.
//
// Mender-style two-phase switch: a staged candidate serves traffic but is
// uncommitted — nothing durable changes, and a crash or revert restores the
// incumbent bit-for-bit. Every coordinator decision is journaled before it is
// acted on (internal/wal.Journal), so a coordinator that dies at any decision
// point resumes — or completes its rollback — deterministically.
package rollout

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"vesta/internal/loadgen"
	"vesta/internal/serve"
	"vesta/internal/workload"
)

// Manifest bounds for fuzz-safe parsing: a hostile manifest can never force
// the coordinator into unbounded work.
const (
	maxStages         = 64
	maxStageCount     = 4096
	maxGoldenRequests = 1024
	maxVersionLen     = 256
)

// Manifest is the operator-authored rollout description: the promotion
// schedule and the gate budgets. Zero-valued gate fields take the documented
// defaults (a manifest of `{}` is the standard canary-then-full rollout);
// negative values are rejected.
type Manifest struct {
	// Version names the candidate; empty derives "sha256-<prefix>" from the
	// candidate bytes so retries of the same build are idempotent.
	Version string `json:"version,omitempty"`
	// Stages are cumulative follower counts per promotion stage, strictly
	// increasing: [1, 3] stages one canary, then two more followers, then
	// (always, appended implicitly) the remaining fleet. Empty defaults to
	// [1] — canary then full.
	Stages []int `json:"stages,omitempty"`
	// GoldenSeed seeds the deterministic golden replay schedule (default 1).
	GoldenSeed uint64 `json:"golden_seed,omitempty"`
	// GoldenRequests is the replay length per gate probe (default 32,
	// max 1024).
	GoldenRequests int `json:"golden_requests,omitempty"`
	// Apps restricts the golden replay's applications (Table 3 names);
	// empty replays across every application.
	Apps []string `json:"apps,omitempty"`
	// MaxDeviation caps the mean relative |Δ predicted_sec| over ranking VMs
	// shared between incumbent and candidate responses (default 0.05).
	MaxDeviation float64 `json:"max_deviation,omitempty"`
	// MinBestAgreement floors the fraction of golden requests whose best-VM
	// pick matches the incumbent's (default 0.9).
	MinBestAgreement float64 `json:"min_best_agreement,omitempty"`
	// GateTimeoutSec bounds each stage's gate — every probe and replay of
	// that stage together (default 30).
	GateTimeoutSec float64 `json:"gate_timeout_sec,omitempty"`
}

// withDefaults fills zero-valued gate fields with the documented defaults.
func (m Manifest) withDefaults() Manifest {
	if len(m.Stages) == 0 {
		m.Stages = []int{1}
	}
	if m.GoldenSeed == 0 {
		m.GoldenSeed = 1
	}
	if m.GoldenRequests == 0 {
		m.GoldenRequests = 32
	}
	if m.MaxDeviation == 0 {
		m.MaxDeviation = 0.05
	}
	if m.MinBestAgreement == 0 {
		m.MinBestAgreement = 0.9
	}
	if m.GateTimeoutSec == 0 {
		m.GateTimeoutSec = 30
	}
	return m
}

// Validate checks the invariants FuzzRolloutManifest hammers. It validates
// the manifest as given; ParseManifest applies defaults first.
func (m Manifest) Validate() error {
	if len(m.Version) > maxVersionLen {
		return fmt.Errorf("rollout: version length %d (max %d)", len(m.Version), maxVersionLen)
	}
	if len(m.Stages) == 0 {
		return fmt.Errorf("rollout: empty stages")
	}
	if len(m.Stages) > maxStages {
		return fmt.Errorf("rollout: %d stages (max %d)", len(m.Stages), maxStages)
	}
	prev := 0
	for _, s := range m.Stages {
		if s <= prev {
			return fmt.Errorf("rollout: stages %v not strictly increasing positives", m.Stages)
		}
		if s > maxStageCount {
			return fmt.Errorf("rollout: stage count %d (max %d)", s, maxStageCount)
		}
		prev = s
	}
	if m.GoldenRequests < 1 || m.GoldenRequests > maxGoldenRequests {
		return fmt.Errorf("rollout: golden_requests %d (want 1..%d)", m.GoldenRequests, maxGoldenRequests)
	}
	if math.IsNaN(m.MaxDeviation) || math.IsInf(m.MaxDeviation, 0) || m.MaxDeviation < 0 || m.MaxDeviation > 10 {
		return fmt.Errorf("rollout: max_deviation %v (want finite 0..10)", m.MaxDeviation)
	}
	if math.IsNaN(m.MinBestAgreement) || m.MinBestAgreement < 0 || m.MinBestAgreement > 1 {
		return fmt.Errorf("rollout: min_best_agreement %v (want 0..1)", m.MinBestAgreement)
	}
	if math.IsNaN(m.GateTimeoutSec) || math.IsInf(m.GateTimeoutSec, 0) ||
		m.GateTimeoutSec <= 0 || m.GateTimeoutSec > 3600 {
		return fmt.Errorf("rollout: gate_timeout_sec %v (want 0 < t <= 3600)", m.GateTimeoutSec)
	}
	for _, name := range m.Apps {
		if _, err := workload.ByName(name); err != nil {
			return fmt.Errorf("rollout: unknown app %q", name)
		}
	}
	return nil
}

// ParseManifest decodes a JSON manifest strictly — unknown fields and
// trailing garbage are errors — applies defaults, and validates. Malformed
// bytes never panic; they always yield a typed error.
func ParseManifest(data []byte) (Manifest, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("rollout: parsing manifest: %w", err)
	}
	if dec.More() {
		return Manifest{}, fmt.Errorf("rollout: trailing data after manifest object")
	}
	m = m.withDefaults()
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Golden derives the gate's replay schedule: the first GoldenRequests
// predict arrivals of a deterministic loadgen schedule seeded by GoldenSeed.
// A pure function of the manifest — incumbent baseline and candidate replay
// see byte-identical requests, and a resumed coordinator regenerates the
// same schedule without journaling it.
func (m Manifest) Golden() ([]serve.Request, error) {
	m = m.withDefaults()
	// Steady 8 req/s for GoldenRequests seconds offers ~8x the arrivals the
	// gate needs; the doubling retry covers the (astronomically unlikely)
	// thin Poisson draw without breaking determinism.
	for durMul := 1; durMul <= 8; durMul *= 2 {
		cfg := loadgen.Config{
			Seed:        m.GoldenSeed,
			DurationSec: float64(m.GoldenRequests * durMul),
			Pattern:     loadgen.Pattern{Kind: loadgen.Steady, RPS: 8},
			Mix:         []loadgen.MixEntry{{Kind: loadgen.KindPredict, Weight: 1}},
			Tenants:     4,
			ZipfS:       1.1,
			Apps:        m.Apps,
		}
		arrivals, err := loadgen.Schedule(cfg)
		if err != nil {
			return nil, fmt.Errorf("rollout: golden schedule: %w", err)
		}
		reqs := make([]serve.Request, 0, m.GoldenRequests)
		for _, a := range arrivals {
			if a.Kind != loadgen.KindPredict {
				continue
			}
			reqs = append(reqs, serve.Request{App: a.App, Seed: a.Seed, Top: 8})
			if len(reqs) == m.GoldenRequests {
				return reqs, nil
			}
		}
	}
	return nil, fmt.Errorf("rollout: golden schedule too thin for %d requests", m.GoldenRequests)
}
