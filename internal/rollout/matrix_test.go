package rollout

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vesta/internal/chaos"
)

// matrixCell is one fault-injection scenario of the convergence matrix.
type matrixCell struct {
	name   string
	plan   chaos.RolloutPlan
	commit bool   // expected terminal verdict
	reason string // substring the rollback reason must carry
}

// matrixCells enumerates the convergence matrix: a clean run plus every
// fault class (staging push lost, health flap, replay regression) at every
// promotion stage (canary, partial, full), including a canary that only
// starts flapping during a later gate.
func matrixCells() []matrixCell {
	return []matrixCell{
		{name: "clean", commit: true},
		{name: "stage-fail-canary",
			plan:   chaos.RolloutPlan{StageFails: []chaos.NodeStage{{Node: 0, Stage: 1}}},
			reason: "stage 1"},
		{name: "stage-fail-partial",
			plan:   chaos.RolloutPlan{StageFails: []chaos.NodeStage{{Node: 1, Stage: 2}}},
			reason: "stage 2"},
		{name: "stage-fail-full",
			plan:   chaos.RolloutPlan{StageFails: []chaos.NodeStage{{Node: 2, Stage: 3}}},
			reason: "stage 3"},
		{name: "health-fail-canary",
			plan:   chaos.RolloutPlan{HealthFails: []chaos.NodeStage{{Node: 0, Stage: 1}}},
			reason: "health probe follower-0"},
		{name: "health-fail-partial",
			plan:   chaos.RolloutPlan{HealthFails: []chaos.NodeStage{{Node: 1, Stage: 2}}},
			reason: "health probe follower-1"},
		{name: "health-fail-full",
			plan:   chaos.RolloutPlan{HealthFails: []chaos.NodeStage{{Node: 2, Stage: 3}}},
			reason: "health probe follower-2"},
		{name: "replay-fail-canary",
			plan:   chaos.RolloutPlan{ReplayFails: []chaos.NodeStage{{Node: 0, Stage: 1}}},
			reason: "golden replay follower-0"},
		{name: "replay-fail-full",
			plan:   chaos.RolloutPlan{ReplayFails: []chaos.NodeStage{{Node: 2, Stage: 3}}},
			reason: "golden replay follower-2"},
		// The canary staged fine and passed its own gate, then flaps during
		// the partial gate: later gates re-probe every staged node.
		{name: "canary-flaps-later",
			plan:   chaos.RolloutPlan{HealthFails: []chaos.NodeStage{{Node: 0, Stage: 2}}},
			reason: "health probe follower-0"},
		// Canary's replay regresses only once the full wave is staged.
		{name: "canary-replay-regresses-later",
			plan:   chaos.RolloutPlan{ReplayFails: []chaos.NodeStage{{Node: 0, Stage: 3}}},
			reason: "golden replay follower-0"},
	}
}

// runCell drives one coordinator over a fresh fleet under the cell's plan
// and returns the fleet plus journal dir for assertions.
func runCell(t *testing.T, plan chaos.RolloutPlan) (*fleet, *Outcome, string, error) {
	t.Helper()
	snaps := fixture(t)
	fl := newFleet(t, snaps[0], 3)
	dir := t.TempDir()
	j, prior := newJournal(t, dir)
	c, err := New(Config{
		Manifest:  matrixManifest(),
		Candidate: encodeSnap(t, snaps[1]),
		Version:   "v1",
		Leader:    fl.leader,
		Followers: fl.followers,
		Journal:   j,
		Prior:     prior,
		Hooks:     PlanHooks(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(context.Background())
	return fl, out, dir, err
}

// TestRolloutConvergenceMatrix: for every injected fault the fleet ends
// byte-identical on exactly one version — the candidate when every gate
// passed, the incumbent otherwise — and the journal's last word agrees.
func TestRolloutConvergenceMatrix(t *testing.T) {
	snaps := fixture(t)
	incumbent := encodeSnap(t, snaps[0])
	candidate := encodeSnap(t, snaps[1])
	for _, cell := range matrixCells() {
		t.Run(cell.name, func(t *testing.T) {
			fl, out, dir, err := runCell(t, cell.plan)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out.Committed != cell.commit {
				t.Fatalf("committed = %v (reason %q), want %v", out.Committed, out.Reason, cell.commit)
			}
			want := incumbent
			if cell.commit {
				want = candidate
			}
			fl.assertConverged(t, want, cell.name)
			if !cell.commit {
				if !strings.Contains(out.Reason, cell.reason) {
					t.Fatalf("rollback reason %q does not name %q", out.Reason, cell.reason)
				}
			} else {
				for i, srv := range fl.servers() {
					if v := srv.CommittedVersion(); v != "v1" {
						t.Fatalf("member %d committed version = %q, want v1", i, v)
					}
				}
			}
			ops := journalOps(t, dir)
			last := ops[len(ops)-1]
			if last.Op != "done" || last.Pass != cell.commit {
				t.Fatalf("journal tail = %+v, want done pass=%v", last, cell.commit)
			}
			if len(ops) != out.Decisions {
				t.Fatalf("journal holds %d decisions, outcome says %d", len(ops), out.Decisions)
			}
		})
	}
}

// crashSweep runs plan uncrashed to learn its decision count and terminal
// state, then for every decision index k kills the coordinator right after
// journaling decision k and resumes a fresh coordinator over the recovered
// journal — the resumed run must reach the same terminal state, byte for
// byte.
func crashSweep(t *testing.T, plan chaos.RolloutPlan, wantCommit bool) {
	t.Helper()
	snaps := fixture(t)
	incumbent := encodeSnap(t, snaps[0])
	candidate := encodeSnap(t, snaps[1])
	_, ref, _, err := runCell(t, plan)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Committed != wantCommit {
		t.Fatalf("reference committed = %v, want %v", ref.Committed, wantCommit)
	}
	want := incumbent
	if wantCommit {
		want = candidate
	}
	for k := 1; k <= ref.Decisions; k++ {
		killer := plan
		killer.KillCoordinatorAt = k
		fl, out, dir, err := runCell(t, killer)
		if !errors.Is(err, chaos.ErrCoordinatorKilled) {
			t.Fatalf("kill at %d: err = %v (out %+v), want ErrCoordinatorKilled", k, err, out)
		}
		// Resume: a fresh coordinator over the recovered journal, same fleet,
		// same faults minus the kill.
		j, prior := newJournal(t, dir)
		if len(prior) != k {
			t.Fatalf("kill at %d: recovered %d journal entries", k, len(prior))
		}
		c, err := New(Config{
			Manifest:  matrixManifest(),
			Candidate: candidate,
			Version:   "v1",
			Leader:    fl.leader,
			Followers: fl.followers,
			Journal:   j,
			Prior:     prior,
			Hooks:     PlanHooks(plan),
		})
		if err != nil {
			t.Fatalf("kill at %d: new resumed coordinator: %v", k, err)
		}
		out, err = c.Run(context.Background())
		if err != nil {
			t.Fatalf("kill at %d: resumed run: %v", k, err)
		}
		if out.Committed != ref.Committed || !out.Resumed {
			t.Fatalf("kill at %d: resumed outcome %+v, want committed=%v resumed", k, out, ref.Committed)
		}
		fl.assertConverged(t, want, "resume after kill")
		ops := journalOps(t, dir)
		last := ops[len(ops)-1]
		if last.Op != "done" || last.Pass != ref.Committed {
			t.Fatalf("kill at %d: journal tail = %+v", k, last)
		}
	}
}

// TestRolloutCrashResumeCommitPath sweeps the coordinator kill across every
// decision of a clean rollout: whatever the crash point, the resumed
// coordinator commits the fleet to the candidate.
func TestRolloutCrashResumeCommitPath(t *testing.T) {
	crashSweep(t, chaos.RolloutPlan{}, true)
}

// TestRolloutCrashResumeRollbackPath sweeps the kill across a rollout whose
// partial-stage gate fails: every resume completes the rollback to the
// incumbent.
func TestRolloutCrashResumeRollbackPath(t *testing.T) {
	crashSweep(t, chaos.RolloutPlan{HealthFails: []chaos.NodeStage{{Node: 1, Stage: 2}}}, false)
}

// TestRolloutResumeOfDoneIsIdempotent: re-running a finished journal touches
// nothing and reports the recorded terminal state.
func TestRolloutResumeOfDoneIsIdempotent(t *testing.T) {
	snaps := fixture(t)
	fl, out, dir, err := runCell(t, chaos.RolloutPlan{})
	if err != nil || !out.Committed {
		t.Fatalf("run = %+v, %v", out, err)
	}
	j, prior := newJournal(t, dir)
	c, err := New(Config{
		Manifest:  matrixManifest(),
		Candidate: encodeSnap(t, snaps[1]),
		Version:   "v1",
		Leader:    fl.leader,
		Followers: fl.followers,
		Journal:   j,
		Prior:     prior,
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Committed || !again.Resumed || again.Decisions != out.Decisions {
		t.Fatalf("re-run of done journal = %+v, want committed resumed with %d decisions", again, out.Decisions)
	}
	fl.assertConverged(t, encodeSnap(t, snaps[1]), "idempotent re-run")
}

// TestRolloutJournalVersionMismatch: a journal from a different candidate's
// rollout is refused, never silently continued.
func TestRolloutJournalVersionMismatch(t *testing.T) {
	snaps := fixture(t)
	fl, out, dir, err := runCell(t, chaos.RolloutPlan{})
	if err != nil || !out.Committed {
		t.Fatalf("run = %+v, %v", out, err)
	}
	j, prior := newJournal(t, dir)
	c, err := New(Config{
		Manifest:  matrixManifest(),
		Candidate: encodeSnap(t, snaps[2]),
		Version:   "v2",
		Leader:    fl.leader,
		Followers: fl.followers,
		Journal:   j,
		Prior:     prior,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("mismatched journal run = %v, want version error", err)
	}
}
