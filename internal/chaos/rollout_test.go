package chaos

import "testing"

func TestRolloutPlanZero(t *testing.T) {
	var p RolloutPlan
	for node := 0; node < 4; node++ {
		for stage := 0; stage <= 4; stage++ {
			if p.StageFailed(node, stage) || p.HealthFailed(node, stage) || p.ReplayFailed(node, stage) {
				t.Fatalf("zero plan injected a fault at node %d stage %d", node, stage)
			}
		}
	}
	for d := 0; d <= 10; d++ {
		if p.CoordinatorKilled(d) {
			t.Fatalf("zero plan killed the coordinator at decision %d", d)
		}
	}
}

func TestRolloutPlanCells(t *testing.T) {
	p := RolloutPlan{
		StageFails:  []NodeStage{{Node: 1, Stage: 2}},
		HealthFails: []NodeStage{{Node: 0, Stage: 1}, {Node: 0, Stage: 3}},
		ReplayFails: []NodeStage{{Node: 2, Stage: 3}},
	}
	if !p.StageFailed(1, 2) || p.StageFailed(1, 1) || p.StageFailed(2, 2) {
		t.Fatal("StageFailed cell addressing wrong")
	}
	// The same node can flap at two different stages (gate-flap schedule).
	if !p.HealthFailed(0, 1) || !p.HealthFailed(0, 3) || p.HealthFailed(0, 2) {
		t.Fatal("HealthFailed cell addressing wrong")
	}
	if !p.ReplayFailed(2, 3) || p.ReplayFailed(2, 1) {
		t.Fatal("ReplayFailed cell addressing wrong")
	}
}

func TestRolloutPlanStageZeroDisabled(t *testing.T) {
	// Stage 0 never fires: stages are 1-based and 0 disables the clause, so
	// a zero-valued NodeStage cannot accidentally address anything.
	p := RolloutPlan{HealthFails: []NodeStage{{Node: 0, Stage: 0}}}
	for stage := 0; stage <= 3; stage++ {
		if p.HealthFailed(0, stage) {
			t.Fatalf("disabled (stage 0) clause fired at stage %d", stage)
		}
	}
}

func TestRolloutPlanKillCoordinator(t *testing.T) {
	p := RolloutPlan{KillCoordinatorAt: 3}
	for d := 1; d <= 6; d++ {
		if got, want := p.CoordinatorKilled(d), d == 3; got != want {
			t.Fatalf("CoordinatorKilled(%d) = %v, want %v", d, got, want)
		}
	}
}
