// Rollout fault injection: the staged fleet-upgrade coordinator
// (internal/rollout) promotes a candidate version across followers in stages
// and gates every stage on health probes plus a golden predict replay. A
// RolloutPlan decides — deterministically, as a pure function of (node index,
// stage) — which of those staging attempts, health probes, or replay
// comparisons fail, and at which WAL-recorded decision the coordinator
// process itself dies.
//
// The model mirrors NetPlan: an enumerable schedule instead of a random
// process, so the rollout convergence matrix can replay every
// kill-mid-upgrade / partition-during-canary / gate-flap combination and
// assert the fleet ends byte-identical on exactly one version. Stages and
// decision indices are 1-based so "the first" is addressable; 0 disables a
// clause.
package chaos

import "errors"

// ErrStageFault marks an injected staging failure (the candidate never
// reaches the node — a partitioned or crashed upgrade push). Callers match
// with errors.Is.
var ErrStageFault = errors.New("chaos: injected staging failure")

// ErrCoordinatorKilled marks the injected coordinator crash: the rollout
// process dies immediately after journaling a decision, before acting on it.
var ErrCoordinatorKilled = errors.New("chaos: injected coordinator crash")

// NodeStage addresses one (node, stage) cell of a rollout: the clause fires
// when the named node is acted on during the given promotion stage.
type NodeStage struct {
	// Node is the 0-based follower index in the coordinator's fleet order.
	Node int
	// Stage is the 1-based promotion stage (1 = canary). 0 disables.
	Stage int
}

// RolloutPlan is a deterministic rollout-fault schedule. The zero plan
// injects nothing. Decisions depend only on the plan and the (node, stage)
// pair — never on wall-clock time or goroutine schedule — so a matrix sweep
// over plans is exactly reproducible.
type RolloutPlan struct {
	// StageFails lists the (node, stage) cells whose candidate staging fails
	// (the push never lands; the node keeps serving the incumbent).
	StageFails []NodeStage
	// HealthFails lists the (node, stage) cells whose health probe fails
	// during the gate — a node that staged fine but then flaps.
	HealthFails []NodeStage
	// ReplayFails lists the (node, stage) cells whose golden predict replay
	// deviates beyond any budget — the model regression a liveness probe
	// cannot see.
	ReplayFails []NodeStage
	// KillCoordinatorAt is the 1-based journal decision index immediately
	// after which the coordinator process dies (0: never). The crash lands
	// between journaling a decision and acting on it — the worst point — and
	// the resumed coordinator must reach the same terminal state.
	KillCoordinatorAt int
}

// matches reports whether any clause addresses (node, stage).
func matches(cells []NodeStage, node, stage int) bool {
	for _, c := range cells {
		if c.Node == node && c.Stage == stage && c.Stage > 0 {
			return true
		}
	}
	return false
}

// StageFailed reports whether node's staging during stage is injected to
// fail. Stages are 1-based.
func (p RolloutPlan) StageFailed(node, stage int) bool {
	return matches(p.StageFails, node, stage)
}

// HealthFailed reports whether node's health probe during stage's gate is
// injected to fail.
func (p RolloutPlan) HealthFailed(node, stage int) bool {
	return matches(p.HealthFails, node, stage)
}

// ReplayFailed reports whether node's golden replay during stage's gate is
// injected to deviate beyond budget.
func (p RolloutPlan) ReplayFailed(node, stage int) bool {
	return matches(p.ReplayFails, node, stage)
}

// CoordinatorKilled reports whether the coordinator dies immediately after
// journaling decision index (1-based).
func (p RolloutPlan) CoordinatorKilled(decision int) bool {
	return p.KillCoordinatorAt > 0 && decision == p.KillCoordinatorAt
}
