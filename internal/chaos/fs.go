// Filesystem fault injection: the durable-state layer (internal/wal) performs
// every file operation through the small FS seam below, so tests can swap the
// real filesystem for a FaultFS that injects the crash classes a production
// service actually meets — power loss mid-write, a failed fsync, a failed
// rename — at deterministic, enumerable points.
//
// The injection model follows the package's determinism contract: a FaultFS
// decision depends only on the plan and on the operation counts accumulated so
// far, never on wall-clock time or goroutine schedule. A counting pass with
// the zero plan measures how many bytes/syncs/renames an operation performs;
// the crash matrix then replays the operation once per enumerated fault point.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Injected fault sentinels. Callers match with errors.Is.
var (
	// ErrPowerCut is returned once the simulated power cut has tripped: the
	// write that crossed the cut point wrote only its surviving prefix, and
	// every later mutating operation fails.
	ErrPowerCut = errors.New("chaos: simulated power cut")
	// ErrInjectedFault is the base error of a single injected operation
	// failure (fsync, rename, directory sync).
	ErrInjectedFault = errors.New("chaos: injected fault")
)

// FS is the filesystem seam the durable-state layer does all its I/O through.
// Implementations must return errors satisfying errors.Is(err, fs.ErrNotExist)
// for missing files, mirroring the os package.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// Append opens (creating if absent) name for appending.
	Append(name string) (File, error)
	// Rename atomically moves oldpath over newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making a preceding rename durable
	// across power loss.
	SyncDir(dir string) error
	// Size returns the current length of name in bytes.
	Size(name string) (int64, error)
}

// File is a writable file handle with explicit durability control.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	Close() error
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error              { return os.MkdirAll(dir, 0o755) }
func (osFS) ReadFile(name string) ([]byte, error)   { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

func (osFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// FSPlan selects the deterministic filesystem fault points. The zero plan
// injects nothing. All indices are 1-based so "the first" operation is
// addressable; 0 disables that class.
type FSPlan struct {
	// CutAtByte is the index of the first written data byte that never
	// reaches the filesystem: the write in flight keeps only its prefix, and
	// the power cut trips — every later mutating operation (writes, syncs,
	// renames, truncates, creates) fails with ErrPowerCut. CutAtByte 1 means
	// nothing survives.
	CutAtByte int64
	// FailSync makes the Nth File.Sync call fail (once). The preceding
	// writes stay in the page cache of the wrapped filesystem — the
	// conservative model is that the data survived, and the caller must act
	// as if it may not have.
	FailSync int
	// FailRename makes the Nth Rename call fail without renaming.
	FailRename int
	// FailSyncDir makes the Nth SyncDir call fail.
	FailSyncDir int
}

// FSOps counts the operations a FaultFS has passed through (including the
// faulted ones). A counting pass with the zero plan sizes the crash matrix.
type FSOps struct {
	WriteBytes int64
	Syncs      int
	Renames    int
	SyncDirs   int
}

// FaultFS wraps an inner FS with the FSPlan's deterministic crash points.
// It is safe for concurrent use; decisions depend only on the accumulated
// operation counts.
type FaultFS struct {
	inner FS
	plan  FSPlan

	mu  sync.Mutex
	ops FSOps
	cut bool
}

// NewFaultFS wraps inner with plan's fault points.
func NewFaultFS(inner FS, plan FSPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan}
}

// Ops returns the operation counts accumulated so far.
func (f *FaultFS) Ops() FSOps {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Cut reports whether the power cut has tripped.
func (f *FaultFS) Cut() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cut
}

// checkAlive fails every mutating operation after the power cut.
func (f *FaultFS) checkAlive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cut {
		return ErrPowerCut
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// ReadFile stays available after the cut: recovery reads what survived.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *FaultFS) Size(name string) (int64, error) { return f.inner.Size(name) }

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Append(name string) (File, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	file, err := f.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.cut {
		f.mu.Unlock()
		return ErrPowerCut
	}
	f.ops.Renames++
	inject := f.plan.FailRename > 0 && f.ops.Renames == f.plan.FailRename
	f.mu.Unlock()
	if inject {
		return fmt.Errorf("%w: rename %s", ErrInjectedFault, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	if f.cut {
		f.mu.Unlock()
		return ErrPowerCut
	}
	f.ops.SyncDirs++
	inject := f.plan.FailSyncDir > 0 && f.ops.SyncDirs == f.plan.FailSyncDir
	f.mu.Unlock()
	if inject {
		return fmt.Errorf("%w: syncdir %s", ErrInjectedFault, dir)
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads writes and syncs through the owning FaultFS's budget.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	if w.fs.cut {
		w.fs.mu.Unlock()
		return 0, ErrPowerCut
	}
	keep := len(p)
	if c := w.fs.plan.CutAtByte; c > 0 {
		// Bytes are numbered from 1; byte c and beyond are lost. The cut trips
		// only when this write actually reaches byte c — a write ending exactly
		// at byte c-1 succeeds in full, so an append either survives complete
		// (and is acknowledged) or loses its tail (and is not).
		if remaining := c - 1 - w.fs.ops.WriteBytes; int64(keep) > remaining {
			if remaining < 0 {
				remaining = 0
			}
			keep = int(remaining)
			w.fs.cut = true
		}
	}
	w.fs.ops.WriteBytes += int64(keep)
	cut := w.fs.cut
	w.fs.mu.Unlock()

	n := 0
	if keep > 0 {
		var err error
		n, err = w.inner.Write(p[:keep])
		if err != nil {
			return n, err
		}
	}
	if cut {
		return n, ErrPowerCut
	}
	return n, nil
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	if w.fs.cut {
		w.fs.mu.Unlock()
		return ErrPowerCut
	}
	w.fs.ops.Syncs++
	inject := w.fs.plan.FailSync > 0 && w.fs.ops.Syncs == w.fs.plan.FailSync
	w.fs.mu.Unlock()
	if inject {
		return fmt.Errorf("%w: fsync", ErrInjectedFault)
	}
	return w.inner.Sync()
}

// Close always reaches the inner file so the test directory is not left with
// leaked descriptors, even after a cut.
func (w *faultFile) Close() error { return w.inner.Close() }
