// Replication-fabric fault injection: the replicated serving fleet
// (internal/replicate) moves WAL frames from a leader to its followers in
// discrete sync rounds, and a NetPlan decides — deterministically, as a pure
// function of (follower index, round) — which of those rounds are lost to a
// network partition, which are lagged, and when the leader itself dies.
//
// The model mirrors FSPlan: an enumerable schedule instead of a random
// process, so the convergence matrix in internal/replicate can replay every
// partition/lag/leader-kill combination and assert that each surviving
// follower recovers to the leader's last acked epoch. All rounds are 1-based
// so "the first sync" is addressable; 0 disables that clause.
package chaos

import "errors"

// ErrPartitioned marks a sync round dropped by an injected network
// partition. Callers match with errors.Is.
var ErrPartitioned = errors.New("chaos: injected network partition")

// Partition cuts one follower's link to the leader for a round interval.
type Partition struct {
	// Follower is the 0-based index of the partitioned follower.
	Follower int
	// From is the first sync round the link is down (1-based, inclusive).
	From int
	// Until is the first round the link is back up (exclusive). Until <= From
	// disables the clause.
	Until int
}

// Lag delays one follower's replication without cutting it: its first Rounds
// sync rounds complete but deliver no new frames, so the follower trails the
// leader until the lag budget is spent.
type Lag struct {
	// Follower is the 0-based index of the lagged follower.
	Follower int
	// Rounds is how many initial sync rounds deliver nothing.
	Rounds int
}

// NetPlan is a deterministic replication-fault schedule. The zero plan
// injects nothing. Decisions depend only on the plan and the (follower,
// round) pair — never on wall-clock time or goroutine schedule — so a
// matrix sweep over plans is exactly reproducible.
type NetPlan struct {
	// Partitions lists the link-down intervals.
	Partitions []Partition
	// Lags lists the delayed-delivery budgets.
	Lags []Lag
	// KillLeaderAt is the 1-based sync round at the start of which the
	// leader process dies (0: never). The test harness, not the transport,
	// enacts the kill; the field lives here so one plan value describes the
	// whole schedule.
	KillLeaderAt int
}

// Partitioned reports whether follower's fetch in round is dropped by a
// partition clause. Rounds are 1-based.
func (p NetPlan) Partitioned(follower, round int) bool {
	for _, c := range p.Partitions {
		if c.Follower == follower && round >= c.From && round < c.Until {
			return true
		}
	}
	return false
}

// Lagged reports whether follower's fetch in round completes but delivers no
// new frames. A partitioned round does not consume lag budget: the lag
// clause counts only rounds that actually reach the leader.
func (p NetPlan) Lagged(follower, round int) bool {
	budget := 0
	for _, c := range p.Lags {
		if c.Follower == follower && c.Rounds > budget {
			budget = c.Rounds
		}
	}
	if budget == 0 {
		return false
	}
	// Count the non-partitioned rounds up to and including this one; the
	// first `budget` of them are lagged.
	seen := 0
	for r := 1; r <= round; r++ {
		if p.Partitioned(follower, r) {
			continue
		}
		seen++
		if r == round {
			return seen <= budget
		}
	}
	return false
}

// LeaderAlive reports whether the leader still accepts absorbs at the start
// of round. Rounds are 1-based; a zero KillLeaderAt never kills.
func (p NetPlan) LeaderAlive(round int) bool {
	return p.KillLeaderAt == 0 || round < p.KillLeaderAt
}
