package chaos

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestOSFSRoundTrip(t *testing.T) {
	root := t.TempDir()
	osfs := OSFS()
	dir := filepath.Join(root, "a", "b")
	if err := osfs.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "f")
	f, err := osfs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := osfs.Append(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := osfs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("contents = %q", data)
	}
	if n, err := osfs.Size(name); err != nil || n != 11 {
		t.Fatalf("size = %d, %v", n, err)
	}
	if err := osfs.Truncate(name, 5); err != nil {
		t.Fatal(err)
	}
	if data, _ = osfs.ReadFile(name); string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	dst := filepath.Join(dir, "g")
	if err := osfs.Rename(name, dst); err != nil {
		t.Fatal(err)
	}
	if err := osfs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := osfs.ReadFile(name); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("renamed-away file readable: %v", err)
	}
	if err := osfs.Remove(dst); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSZeroPlanPassesThroughAndCounts(t *testing.T) {
	root := t.TempDir()
	ffs := NewFaultFS(OSFS(), FSPlan{})
	name := filepath.Join(root, "f")
	f, err := ffs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(name, name+"2"); err != nil {
		t.Fatal(err)
	}
	if err := ffs.SyncDir(root); err != nil {
		t.Fatal(err)
	}
	ops := ffs.Ops()
	if ops.WriteBytes != 10 || ops.Syncs != 1 || ops.Renames != 1 || ops.SyncDirs != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	if ffs.Cut() {
		t.Fatal("zero plan tripped the cut")
	}
}

func TestFaultFSPowerCutKeepsPrefixThenFailsEverything(t *testing.T) {
	root := t.TempDir()
	ffs := NewFaultFS(OSFS(), FSPlan{CutAtByte: 5})
	name := filepath.Join(root, "f")
	f, err := ffs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write err = %v", err)
	}
	if n != 4 {
		t.Fatalf("surviving bytes = %d, want 4", n)
	}
	if !ffs.Cut() {
		t.Fatal("cut not tripped")
	}
	// Every later mutating op fails; reads still work (recovery reads what
	// survived).
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut write err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut sync err = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(name, name+"2"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut rename err = %v", err)
	}
	if err := ffs.Truncate(name, 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut truncate err = %v", err)
	}
	if err := ffs.SyncDir(root); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut syncdir err = %v", err)
	}
	if _, err := ffs.Create(name + "3"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut create err = %v", err)
	}
	data, err := ffs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "0123" {
		t.Fatalf("survived = %q, want 0123", data)
	}
}

func TestFaultFSCutAtByteOneLosesEverything(t *testing.T) {
	root := t.TempDir()
	ffs := NewFaultFS(OSFS(), FSPlan{CutAtByte: 1})
	f, err := ffs.Create(filepath.Join(root, "f"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abc"))
	if n != 0 || !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write = %d, %v", n, err)
	}
	f.Close()
}

func TestFaultFSFailsExactlyTheNthOp(t *testing.T) {
	root := t.TempDir()
	ffs := NewFaultFS(OSFS(), FSPlan{FailSync: 2, FailRename: 1, FailSyncDir: 2})
	name := filepath.Join(root, "f")
	f, err := ffs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("sync 2 = %v, want injected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
	f.Close()
	if err := ffs.Rename(name, name+"2"); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("rename 1 = %v, want injected", err)
	}
	// The injected rename did not move the file.
	if _, err := os.Stat(name); err != nil {
		t.Fatalf("source gone after injected rename: %v", err)
	}
	if err := ffs.Rename(name, name+"2"); err != nil {
		t.Fatalf("rename 2: %v", err)
	}
	if err := ffs.SyncDir(root); err != nil {
		t.Fatalf("syncdir 1: %v", err)
	}
	if err := ffs.SyncDir(root); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("syncdir 2 = %v, want injected", err)
	}
}

// TestFaultFSDeterministic replays the same op sequence twice and demands
// identical decisions — the FS extension of the package's pure-function
// contract.
func TestFaultFSDeterministic(t *testing.T) {
	run := func(root string) (string, FSOps) {
		ffs := NewFaultFS(OSFS(), FSPlan{CutAtByte: 23, FailSync: 1})
		name := filepath.Join(root, "f")
		var trace string
		f, _ := ffs.Create(name)
		for i := 0; i < 5; i++ {
			_, werr := f.Write([]byte("0123456789"))
			serr := f.Sync()
			trace += errString(werr) + "|" + errString(serr) + ";"
		}
		f.Close()
		return trace, ffs.Ops()
	}
	t1, o1 := run(t.TempDir())
	t2, o2 := run(t.TempDir())
	if t1 != t2 || o1 != o2 {
		t.Fatalf("non-deterministic fault decisions:\n %s %+v\n %s %+v", t1, o1, t2, o2)
	}
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
