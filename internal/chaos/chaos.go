// Package chaos is the deterministic fault-injection layer for the cluster
// simulator. Real profiling campaigns on EC2 lose runs to spot preemptions,
// transient launch failures, stragglers, OOM kills and dropped metric
// samples; this package decides, reproducibly, which simulated runs suffer
// which of those faults.
//
// Determinism is the whole design: a Plan's decision for a run is a pure
// function of (plan seed, application, VM type, run seed, attempt). It does
// not depend on wall-clock time, scheduling order, or any shared mutable
// state, so a fault sweep fanned out over internal/parallel produces
// byte-identical results at every worker count — the same contract the rest
// of the repository follows via rng.Source.Split. Retrying a failed run with
// a higher attempt number re-rolls the fault dice without touching the
// physics stream, so a run that succeeds on retry measures exactly what it
// would have measured had it succeeded first time.
package chaos

import (
	"fmt"

	"vesta/internal/rng"
)

// Fault labels one injected fault class.
type Fault int

// The injected fault classes. LaunchFailure, SpotPreemption and OOMKill are
// terminal (the run dies); Straggler and SamplerDropout degrade the run
// without killing it.
const (
	None Fault = iota
	// LaunchFailure: the cluster never comes up (capacity error, AMI fetch
	// timeout); only the launch overhead is wasted.
	LaunchFailure
	// SpotPreemption: the spot instances are reclaimed mid-run; the run dies
	// at a uniformly random fraction of its execution.
	SpotPreemption
	// OOMKill: the kernel OOM-killer terminates an executor under memory
	// pressure; only memory-pressured runs are eligible.
	OOMKill
	// Straggler: a slow node stretches the run without killing it.
	Straggler
	// SamplerDropout: the metric collector daemon misses sampling ticks;
	// the run succeeds but its trace has missing (NaN) samples.
	SamplerDropout
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case LaunchFailure:
		return "launch-failure"
	case SpotPreemption:
		return "spot-preemption"
	case OOMKill:
		return "oom-kill"
	case Straggler:
		return "straggler"
	case SamplerDropout:
		return "sampler-dropout"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Rates configures the per-run (and, for SamplerDropout, per-sample)
// injection probabilities. All rates are probabilities in [0, 1].
type Rates struct {
	LaunchFailure  float64
	SpotPreemption float64
	OOMKill        float64
	Straggler      float64
	SamplerDropout float64
}

// Uniform sets every fault class to the same rate — the knob behind the
// -fault-rate flag and the robustness sweep's x axis.
func Uniform(rate float64) Rates {
	return Rates{
		LaunchFailure:  rate,
		SpotPreemption: rate,
		OOMKill:        rate,
		Straggler:      rate,
		SamplerDropout: rate,
	}
}

// Zero reports whether every rate is zero (the plan injects nothing).
func (r Rates) Zero() bool {
	return r.LaunchFailure == 0 && r.SpotPreemption == 0 && r.OOMKill == 0 &&
		r.Straggler == 0 && r.SamplerDropout == 0
}

// validate clamps rates into [0, 1].
func (r Rates) clamped() Rates {
	c := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return Rates{
		LaunchFailure:  c(r.LaunchFailure),
		SpotPreemption: c(r.SpotPreemption),
		OOMKill:        c(r.OOMKill),
		Straggler:      c(r.Straggler),
		SamplerDropout: c(r.SamplerDropout),
	}
}

// Plan is a deterministic fault schedule. A nil *Plan is valid and injects
// nothing, so callers thread it through unconditionally.
type Plan struct {
	seed  uint64
	rates Rates
}

// NewPlan builds a fault plan. Rates outside [0, 1] are clamped.
func NewPlan(seed uint64, rates Rates) *Plan {
	return &Plan{seed: seed, rates: rates.clamped()}
}

// Rates returns the plan's effective (clamped) rates. A nil plan reports all
// zeroes.
func (p *Plan) Rates() Rates {
	if p == nil {
		return Rates{}
	}
	return p.rates
}

// RunFaults is the fault decision for one run attempt. The zero value means
// "no faults" (what a nil Plan returns).
type RunFaults struct {
	// LaunchFailure kills the run before it starts.
	LaunchFailure bool
	// Preempt kills the run after PreemptFrac of its execution time.
	Preempt     bool
	PreemptFrac float64
	// OOM kills memory-pressured runs after OOMFrac of their execution; the
	// simulator gates it on the run's actual memory pressure.
	OOM     bool
	OOMFrac float64
	// StragglerFactor multiplies the run's duration; 1 means no straggler.
	StragglerFactor float64
	// DropoutRate is the per-sample probability that the metric collector
	// misses a tick; DropoutSeed seeds the sampler's dropout stream.
	DropoutRate float64
	DropoutSeed uint64
}

// Terminal reports whether the decision kills the run outright (before
// memory-pressure gating of the OOM class).
func (f RunFaults) Terminal() bool { return f.LaunchFailure || f.Preempt || f.OOM }

// ForRun returns the fault decision for one run attempt. It is a pure
// function of (plan seed, app, vm, runSeed, attempt): the same inputs give
// the same decision on any goroutine in any order, and a retry (attempt+1)
// re-rolls every draw. A nil plan returns the zero decision.
func (p *Plan) ForRun(app, vm string, runSeed, attempt uint64) RunFaults {
	if p == nil || p.rates.Zero() {
		return RunFaults{StragglerFactor: 1}
	}
	// Derive the decision stream from stable identity only. Every field is
	// drawn unconditionally so the stream layout never depends on earlier
	// decisions.
	src := rng.New(p.seed ^ hashString(app) ^ (hashString(vm) * 0x9e3779b97f4a7c15) ^
		(runSeed * 0xbf58476d1ce4e5b9) ^ ((attempt + 1) * 0x94d049bb133111eb))
	var f RunFaults
	f.LaunchFailure = src.Float64() < p.rates.LaunchFailure
	f.Preempt = src.Float64() < p.rates.SpotPreemption
	f.PreemptFrac = src.Range(0.05, 0.95)
	f.OOM = src.Float64() < p.rates.OOMKill
	f.OOMFrac = src.Range(0.50, 0.98) // OOM usually strikes late, as pressure accumulates
	straggle := src.Float64() < p.rates.Straggler
	factor := 1 + src.Range(0.3, 2.0)
	if straggle {
		f.StragglerFactor = factor
	} else {
		f.StragglerFactor = 1
	}
	f.DropoutRate = p.rates.SamplerDropout
	f.DropoutSeed = src.Uint64()
	return f
}

// hashString gives a stable 64-bit hash (FNV-1a) for seed mixing, matching
// the convention used by sim and core.
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
