package chaos

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	f := p.ForRun("sort", "m5.xlarge", 7, 0)
	if f.LaunchFailure || f.Preempt || f.OOM {
		t.Fatalf("nil plan injected a terminal fault: %+v", f)
	}
	if f.StragglerFactor != 1 {
		t.Fatalf("nil plan StragglerFactor = %v, want 1", f.StragglerFactor)
	}
	if f.DropoutRate != 0 {
		t.Fatalf("nil plan DropoutRate = %v, want 0", f.DropoutRate)
	}
	if !p.Rates().Zero() {
		t.Fatalf("nil plan rates not zero: %+v", p.Rates())
	}
}

func TestZeroRatePlanMatchesNil(t *testing.T) {
	p := NewPlan(42, Rates{})
	f := p.ForRun("sort", "m5.xlarge", 7, 3)
	var nilPlan *Plan
	if f != nilPlan.ForRun("sort", "m5.xlarge", 7, 3) {
		t.Fatalf("zero-rate plan differs from nil plan: %+v", f)
	}
}

func TestForRunIsPure(t *testing.T) {
	p := NewPlan(99, Uniform(0.25))
	want := p.ForRun("pagerank", "c5.2xlarge", 1234, 2)
	for i := 0; i < 10; i++ {
		if got := p.ForRun("pagerank", "c5.2xlarge", 1234, 2); got != want {
			t.Fatalf("call %d: got %+v, want %+v", i, got, want)
		}
	}
	// Interleaving other queries must not perturb the decision.
	p.ForRun("sort", "m5.xlarge", 1, 0)
	p.ForRun("pagerank", "c5.2xlarge", 1234, 3)
	if got := p.ForRun("pagerank", "c5.2xlarge", 1234, 2); got != want {
		t.Fatalf("after interleaving: got %+v, want %+v", got, want)
	}
}

func TestRetryRerollsDecision(t *testing.T) {
	p := NewPlan(7, Uniform(0.5))
	distinct := false
	base := p.ForRun("kmeans", "r5.xlarge", 55, 0)
	for attempt := uint64(1); attempt < 8; attempt++ {
		if p.ForRun("kmeans", "r5.xlarge", 55, attempt) != base {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatalf("8 attempts produced identical decisions at rate 0.5; retry stream looks degenerate")
	}
}

// TestDeterministicAcrossWorkers fans the same decision matrix out over
// different goroutine counts and call orders; every schedule must agree.
func TestDeterministicAcrossWorkers(t *testing.T) {
	p := NewPlan(2026, Uniform(0.15))
	apps := []string{"sort", "wordcount", "pagerank", "kmeans", "join"}
	vms := []string{"m5.xlarge", "c5.2xlarge", "r5.xlarge", "i3.xlarge"}
	type key struct {
		a, v    int
		seed    uint64
		attempt uint64
	}
	var keys []key
	for a := range apps {
		for v := range vms {
			for s := uint64(0); s < 6; s++ {
				for at := uint64(0); at < 2; at++ {
					keys = append(keys, key{a, v, s * 7919, at})
				}
			}
		}
	}
	decide := func(workers int, reverse bool) []RunFaults {
		out := make([]RunFaults, len(keys))
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					k := keys[i]
					out[i] = p.ForRun(apps[k.a], vms[k.v], k.seed, k.attempt)
				}
			}()
		}
		if reverse {
			for i := len(keys) - 1; i >= 0; i-- {
				ch <- i
			}
		} else {
			for i := range keys {
				ch <- i
			}
		}
		close(ch)
		wg.Wait()
		return out
	}
	want := decide(1, false)
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		for _, rev := range []bool{false, true} {
			got := decide(workers, rev)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d reverse=%v: decision %d = %+v, want %+v",
						workers, rev, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEmpiricalRates checks the injected frequencies track the configured
// rates over a large decision population.
func TestEmpiricalRates(t *testing.T) {
	const rate = 0.2
	const n = 20000
	p := NewPlan(5, Uniform(rate))
	var launch, preempt, oom, straggle int
	for i := 0; i < n; i++ {
		f := p.ForRun("app", "vm", uint64(i), 0)
		if f.LaunchFailure {
			launch++
		}
		if f.Preempt {
			preempt++
		}
		if f.OOM {
			oom++
		}
		if f.StragglerFactor != 1 {
			straggle++
		}
	}
	check := func(name string, count int) {
		t.Helper()
		got := float64(count) / n
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("%s rate = %.4f, want %.2f ± 0.02", name, got, rate)
		}
	}
	check("launch-failure", launch)
	check("preemption", preempt)
	check("oom", oom)
	check("straggler", straggle)
}

func TestFractionsAndFactorsInRange(t *testing.T) {
	p := NewPlan(11, Uniform(1))
	for i := 0; i < 1000; i++ {
		f := p.ForRun("app", "vm", uint64(i), 0)
		if f.PreemptFrac < 0.05 || f.PreemptFrac > 0.95 {
			t.Fatalf("PreemptFrac out of range: %v", f.PreemptFrac)
		}
		if f.OOMFrac < 0.50 || f.OOMFrac > 0.98 {
			t.Fatalf("OOMFrac out of range: %v", f.OOMFrac)
		}
		if f.StragglerFactor < 1.3 || f.StragglerFactor > 3.0 {
			t.Fatalf("StragglerFactor out of range at rate 1: %v", f.StragglerFactor)
		}
	}
}

func TestClampedRates(t *testing.T) {
	p := NewPlan(1, Rates{LaunchFailure: -0.5, SpotPreemption: 1.5})
	r := p.Rates()
	if r.LaunchFailure != 0 || r.SpotPreemption != 1 {
		t.Fatalf("rates not clamped: %+v", r)
	}
}

func TestFaultString(t *testing.T) {
	cases := map[Fault]string{
		None:           "none",
		LaunchFailure:  "launch-failure",
		SpotPreemption: "spot-preemption",
		OOMKill:        "oom-kill",
		Straggler:      "straggler",
		SamplerDropout: "sampler-dropout",
		Fault(42):      "fault(42)",
	}
	for f, want := range cases {
		if f.String() != want {
			t.Errorf("Fault(%d).String() = %q, want %q", int(f), f.String(), want)
		}
	}
}
