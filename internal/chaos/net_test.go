package chaos

import "testing"

func TestNetPlanZeroInjectsNothing(t *testing.T) {
	var p NetPlan
	for f := 0; f < 3; f++ {
		for r := 1; r <= 8; r++ {
			if p.Partitioned(f, r) {
				t.Fatalf("zero plan partitions follower %d round %d", f, r)
			}
			if p.Lagged(f, r) {
				t.Fatalf("zero plan lags follower %d round %d", f, r)
			}
		}
	}
	for r := 1; r <= 8; r++ {
		if !p.LeaderAlive(r) {
			t.Fatalf("zero plan kills the leader at round %d", r)
		}
	}
}

func TestPartitionedInterval(t *testing.T) {
	p := NetPlan{Partitions: []Partition{{Follower: 1, From: 2, Until: 4}}}
	// 1-based, From inclusive, Until exclusive.
	for r, want := range map[int]bool{1: false, 2: true, 3: true, 4: false, 5: false} {
		if got := p.Partitioned(1, r); got != want {
			t.Fatalf("round %d: partitioned=%v, want %v", r, got, want)
		}
	}
	// Only the named follower is affected.
	for r := 1; r <= 5; r++ {
		if p.Partitioned(0, r) || p.Partitioned(2, r) {
			t.Fatalf("round %d: partition leaked to another follower", r)
		}
	}
}

func TestPartitionedDisabledWhenUntilNotAfterFrom(t *testing.T) {
	for _, c := range []Partition{
		{Follower: 0, From: 3, Until: 3},
		{Follower: 0, From: 3, Until: 2},
		{Follower: 0, From: 3, Until: 0},
	} {
		p := NetPlan{Partitions: []Partition{c}}
		for r := 1; r <= 6; r++ {
			if p.Partitioned(0, r) {
				t.Fatalf("clause %+v: round %d partitioned", c, r)
			}
		}
	}
}

func TestPartitionedMultipleClauses(t *testing.T) {
	p := NetPlan{Partitions: []Partition{
		{Follower: 0, From: 1, Until: 2},
		{Follower: 0, From: 4, Until: 6},
	}}
	want := map[int]bool{1: true, 2: false, 3: false, 4: true, 5: true, 6: false}
	for r, w := range want {
		if got := p.Partitioned(0, r); got != w {
			t.Fatalf("round %d: partitioned=%v, want %v", r, got, w)
		}
	}
}

func TestLaggedBudget(t *testing.T) {
	p := NetPlan{Lags: []Lag{{Follower: 2, Rounds: 3}}}
	// The first three rounds are lagged, then delivery resumes.
	for r, want := range map[int]bool{1: true, 2: true, 3: true, 4: false, 5: false} {
		if got := p.Lagged(2, r); got != want {
			t.Fatalf("round %d: lagged=%v, want %v", r, got, want)
		}
	}
	if p.Lagged(0, 1) || p.Lagged(1, 1) {
		t.Fatal("lag leaked to another follower")
	}
}

func TestLaggedSkipsPartitionedRounds(t *testing.T) {
	// Rounds 1-2 are partitioned; they must not consume the 2-round lag
	// budget, so rounds 3 and 4 lag and round 5 delivers.
	p := NetPlan{
		Partitions: []Partition{{Follower: 0, From: 1, Until: 3}},
		Lags:       []Lag{{Follower: 0, Rounds: 2}},
	}
	for r, want := range map[int]bool{1: false, 2: false, 3: true, 4: true, 5: false} {
		if got := p.Lagged(0, r); got != want {
			t.Fatalf("round %d: lagged=%v, want %v", r, got, want)
		}
	}
}

func TestLaggedTakesMaxBudget(t *testing.T) {
	p := NetPlan{Lags: []Lag{
		{Follower: 1, Rounds: 1},
		{Follower: 1, Rounds: 3},
		{Follower: 1, Rounds: 2},
	}}
	for r, want := range map[int]bool{3: true, 4: false} {
		if got := p.Lagged(1, r); got != want {
			t.Fatalf("round %d: lagged=%v, want %v", r, got, want)
		}
	}
}

func TestLeaderAlive(t *testing.T) {
	p := NetPlan{KillLeaderAt: 3}
	for r, want := range map[int]bool{1: true, 2: true, 3: false, 4: false} {
		if got := p.LeaderAlive(r); got != want {
			t.Fatalf("round %d: alive=%v, want %v", r, got, want)
		}
	}
}
