package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/sim"
)

func planMeter(seed uint64) *oracle.Meter {
	return oracle.NewMeter(sim.New(sim.DefaultConfig()), seed)
}

// planSnapshot returns a fresh snapshot of a freshly trained system (no
// sharing — these tests exercise plan build paths, so each needs its own
// lineage).
func planSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestPredictFastDeterministicAcrossPlanOrigins is the warm-start
// determinism contract: the prediction must be bit-identical whether the
// plan was built lazily by the first request, eagerly via PreparePlan, or
// restored from an encoded checkpoint.
func TestPredictFastDeterministicAcrossPlanOrigins(t *testing.T) {
	app := mustApp(t, "Spark-lr")

	lazy := planSnapshot(t)
	fromLazy, err := lazy.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}

	eager := planSnapshot(t)
	if err := eager.PreparePlan(); err != nil {
		t.Fatal(err)
	}
	fromEager, err := eager.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := lazy.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(&buf, lazy.Config(), lazy.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.plan.peek() == nil {
		t.Fatal("decoded snapshot did not restore the precomputed plan")
	}
	fromDecoded, err := decoded.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(fromLazy, fromEager) {
		t.Fatal("lazy-plan and eager-plan predictions differ")
	}
	if !reflect.DeepEqual(fromLazy, fromDecoded) {
		t.Fatal("lazy-plan and decoded-plan predictions differ")
	}
}

// TestPredictFastLeavesColdPathUntouched: running the fast path must not
// perturb the historical Predict bytes — the snapshot-isolation contract
// extended to the plan.
func TestPredictFastLeavesColdPathUntouched(t *testing.T) {
	snap := planSnapshot(t)
	app := mustApp(t, "Spark-kmeans")
	before, err := snap.Predict(app, planMeter(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.PredictFast(app, planMeter(9), false); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.PredictFast(app, planMeter(9), true); err != nil {
		t.Fatal(err)
	}
	after, err := snap.Predict(app, planMeter(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("PredictFast perturbed the cold Predict path")
	}
}

// TestPlanSharedAcrossAbsorb: an absorbed snapshot inherits the lineage's
// plan holder instead of re-solving, and PredictFast keeps working across
// epochs.
func TestPlanSharedAcrossAbsorb(t *testing.T) {
	snap := planSnapshot(t)
	app := mustApp(t, "Spark-lr")
	pred, err := snap.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Absorb("plan-target", pred.LabelWeights, pred.PrunedVec)
	if err != nil {
		t.Fatal(err)
	}
	if next.plan != snap.plan {
		t.Fatal("absorbed snapshot does not share the lineage plan holder")
	}
	again, err := next.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}
	// Same plan, new knowledge (K-Means refit): the prediction is still a
	// pure function of (snapshot, request).
	repeat, err := next.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, repeat) {
		t.Fatal("post-absorb PredictFast is not deterministic")
	}
}

// TestPredictFastAccuracyNearCold bounds the warm-start accuracy drift: the
// fast path optimizes the same objective from a converged seed, so its
// predicted times must sit within a few percent of the cold solve's and
// pick the same best VM. (The Figure 7-style absolute accuracy bench for
// the approximate mode lives in internal/bench.)
func TestPredictFastAccuracyNearCold(t *testing.T) {
	snap := planSnapshot(t)
	for _, name := range []string{"Spark-lr", "Spark-kmeans", "Spark-sort"} {
		app := mustApp(t, name)
		cold, err := snap.Predict(app, planMeter(7))
		if err != nil {
			t.Fatal(err)
		}
		for _, approx := range []bool{false, true} {
			fast, err := snap.PredictFast(app, planMeter(7), approx)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Best.Name != cold.Best.Name {
				t.Errorf("%s approx=%v: best VM %s, cold picked %s", name, approx, fast.Best.Name, cold.Best.Name)
			}
			if fast.OnlineRuns != cold.OnlineRuns {
				t.Errorf("%s approx=%v: OnlineRuns %d, cold %d", name, approx, fast.OnlineRuns, cold.OnlineRuns)
			}
			for vm, cv := range cold.PredictedSec {
				fv := fast.PredictedSec[vm]
				if d := (fv - cv) / cv; d > 0.10 || d < -0.10 {
					t.Errorf("%s approx=%v: predicted %s drifted %.1f%% from cold", name, approx, vm, d*100)
				}
			}
		}
	}
}

// TestDecodeSnapshotWithoutPlanField: checkpoints written before the plan
// field existed must still decode, with the plan rebuilt lazily to the
// exact same state.
func TestDecodeSnapshotWithoutPlanField(t *testing.T) {
	snap := planSnapshot(t)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["plan"]; !ok {
		t.Fatal("encoded snapshot is missing the plan field")
	}
	delete(raw, "plan")
	legacy, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(bytes.NewReader(legacy), snap.Config(), snap.Catalog())
	if err != nil {
		t.Fatalf("legacy snapshot without plan field failed to decode: %v", err)
	}
	if decoded.plan.peek() != nil {
		t.Fatal("plan appeared from nowhere on a legacy snapshot")
	}
	app := mustApp(t, "Spark-lr")
	want, err := snap.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decoded.PredictFast(app, planMeter(7), false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("lazily rebuilt plan predicts differently than the original")
	}
}

// TestDecodeSnapshotRejectsMalformedPlan: factors that do not match the
// knowledge shapes must fail decoding loudly instead of serving garbage.
func TestDecodeSnapshotRejectsMalformedPlan(t *testing.T) {
	snap := planSnapshot(t)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var sj map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &sj); err != nil {
		t.Fatal(err)
	}
	sj["plan"] = json.RawMessage(`{"x":[[1,2]],"t":[[3,4]],"l":[[5,6]],"epochs":1}`)
	mangled, err := json.Marshal(sj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(bytes.NewReader(mangled), snap.Config(), snap.Catalog()); err == nil ||
		!strings.Contains(err.Error(), "plan factors") {
		t.Fatalf("malformed plan accepted: err=%v", err)
	}
}

// TestEncodeDeterministicRegardlessOfPlanState: encoding forces the plan, so
// a snapshot encoded before any request and one encoded after serving must
// produce identical bytes — the crash tests' state-fingerprint property.
func TestEncodeDeterministicRegardlessOfPlanState(t *testing.T) {
	fresh := planSnapshot(t)
	var before bytes.Buffer
	if err := fresh.Encode(&before); err != nil {
		t.Fatal(err)
	}
	served := planSnapshot(t)
	if _, err := served.PredictFast(mustApp(t, "Spark-lr"), planMeter(7), false); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := served.Encode(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("plan state leaked into the encoded bytes")
	}
}
