// Snapshot serialization: the durable serving layer (internal/wal) persists
// the published snapshot into checksummed checkpoints and must restore it —
// epoch included — after a crash. The codec reuses the knowledge schema of
// persist.go and adds the epoch, so a decoded snapshot is indistinguishable
// from the one that was encoded: same consistency token (epoch, workloads),
// byte-identical predictions, and the same behaviour under further Absorbs
// (AbsorbTarget refits K-Means from the persisted source vectors).
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"vesta/internal/cloud"
	"vesta/internal/cmf"
	"vesta/internal/mat"
)

// snapshotJSON is the serialization schema of a Snapshot: the publication
// epoch plus the knowledge schema shared with SaveKnowledge/LoadKnowledge,
// and (since the precomputed-ranking release) the lineage's predict plan.
// Plan is optional both ways for compatibility: checkpoints written before
// the field existed decode fine (the plan rebuilds lazily on first
// PredictFast), and a malformed-but-absent field never blocks recovery of
// the knowledge itself.
type snapshotJSON struct {
	Epoch uint64 `json:"epoch"`
	// CatalogVersion and Catalog persist an evolved catalog (absorbed
	// catalog updates, DESIGN.md §14). Both are omitted at version 0 — the
	// catalog is then the construction-time one the decoder already holds —
	// so checkpoints written before catalogs were versioned decode
	// unchanged, and unversioned state encodes to its historical bytes.
	CatalogVersion uint64         `json:"catalog_version,omitempty"`
	Catalog        []cloud.VMType `json:"catalog,omitempty"`
	Knowledge      knowledgeJSON  `json:"knowledge"`
	Plan           *planJSON      `json:"plan,omitempty"`
}

// planJSON serializes the expensive part of a predictPlan: the converged
// source factors of the plan solve. The matrices u/lv and the observed-cell
// indexes are cheap pure functions of the knowledge and are rebuilt on
// decode rather than stored.
type planJSON struct {
	X      [][]float64 `json:"x"`
	T      [][]float64 `json:"t"`
	L      [][]float64 `json:"l"`
	Epochs int         `json:"epochs"`
}

func matrixRows(m *mat.Matrix) [][]float64 {
	rows := make([][]float64, m.Rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// Encode writes the snapshot's state to w as deterministic JSON: field order
// follows the schema structs and map keys are sorted by encoding/json, so
// equal snapshots encode to equal bytes — the property the crash-recovery
// tests use as a state fingerprint. Encode forces the lineage's plan to
// exist first (it is a pure function of the state being encoded, so this
// keeps the bytes deterministic regardless of whether a request already
// built it) and persists its factors, so a recovered server skips the plan
// solve entirely.
func (sn *Snapshot) Encode(w io.Writer) error {
	sj := snapshotJSON{Epoch: sn.epoch, Knowledge: knowledgeToJSON(sn.sys.knowledge)}
	if sn.sys.catVersion > 0 {
		sj.CatalogVersion = sn.sys.catVersion
		sj.Catalog = sn.sys.catalog
	}
	if plan, err := sn.plan.get(sn.sys); err == nil {
		sj.Plan = &planJSON{
			X:      matrixRows(plan.warm.X),
			T:      matrixRows(plan.warm.T),
			L:      matrixRows(plan.warm.L),
			Epochs: plan.warm.Epochs,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(sj)
}

// DecodeSnapshot reconstructs an encoded snapshot. cfg and catalog play the
// role they play in New: the catalog must contain every VM the knowledge
// references, and cfg carries the seed the absorb-time K-Means refits draw
// from — pass the same configuration the encoding system ran with, or
// recovered state will diverge from the pre-crash state on the next Absorb.
func DecodeSnapshot(r io.Reader, cfg Config, catalog []cloud.VMType) (*Snapshot, error) {
	var sj snapshotJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("vesta: decoding snapshot: %w", err)
	}
	sys, err := New(cfg, catalog)
	if err != nil {
		return nil, err
	}
	if err := sys.setKnowledgeFromJSON(sj.Knowledge); err != nil {
		return nil, err
	}
	sn, err := sys.Snapshot()
	if err != nil {
		return nil, err
	}
	sn.epoch = sj.Epoch
	if sj.CatalogVersion > 0 {
		// The snapshot carried an evolved catalog: validate and install it
		// over the construction-time one. The trained index (and the
		// knowledge validated against it above) stays anchored to the base
		// catalog, exactly as in the encoding lineage.
		vc, err := cloud.VersionedAt(sj.Catalog, sj.CatalogVersion)
		if err != nil {
			return nil, fmt.Errorf("vesta: decoding snapshot catalog: %w", err)
		}
		if _, ok := vc.Find(sn.sys.cfg.SandboxVM); !ok {
			return nil, fmt.Errorf("vesta: decoding snapshot: catalog version %d lacks sandbox VM %q",
				sj.CatalogVersion, sn.sys.cfg.SandboxVM)
		}
		sn.sys.catalog = vc.Types()
		sn.sys.byName = cloud.ByName(sn.sys.catalog)
		sn.sys.catVersion = sj.CatalogVersion
	}
	if sj.Plan != nil {
		warm := &cmf.Factors{
			X:      mat.FromRows(sj.Plan.X),
			T:      mat.FromRows(sj.Plan.T),
			L:      mat.FromRows(sj.Plan.L),
			Epochs: sj.Plan.Epochs,
		}
		plan, err := sn.sys.restorePlan(warm)
		if err != nil {
			return nil, err
		}
		sn.plan = &planHolder{done: true, plan: plan}
	}
	return sn, nil
}
