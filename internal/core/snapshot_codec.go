// Snapshot serialization: the durable serving layer (internal/wal) persists
// the published snapshot into checksummed checkpoints and must restore it —
// epoch included — after a crash. The codec reuses the knowledge schema of
// persist.go and adds the epoch, so a decoded snapshot is indistinguishable
// from the one that was encoded: same consistency token (epoch, workloads),
// byte-identical predictions, and the same behaviour under further Absorbs
// (AbsorbTarget refits K-Means from the persisted source vectors).
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"vesta/internal/cloud"
)

// snapshotJSON is the serialization schema of a Snapshot: the publication
// epoch plus the knowledge schema shared with SaveKnowledge/LoadKnowledge.
type snapshotJSON struct {
	Epoch     uint64        `json:"epoch"`
	Knowledge knowledgeJSON `json:"knowledge"`
}

// Encode writes the snapshot's state to w as deterministic JSON: field order
// follows the schema structs and map keys are sorted by encoding/json, so
// equal snapshots encode to equal bytes — the property the crash-recovery
// tests use as a state fingerprint.
func (sn *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(snapshotJSON{Epoch: sn.epoch, Knowledge: knowledgeToJSON(sn.sys.knowledge)})
}

// DecodeSnapshot reconstructs an encoded snapshot. cfg and catalog play the
// role they play in New: the catalog must contain every VM the knowledge
// references, and cfg carries the seed the absorb-time K-Means refits draw
// from — pass the same configuration the encoding system ran with, or
// recovered state will diverge from the pre-crash state on the next Absorb.
func DecodeSnapshot(r io.Reader, cfg Config, catalog []cloud.VMType) (*Snapshot, error) {
	var sj snapshotJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("vesta: decoding snapshot: %w", err)
	}
	sys, err := New(cfg, catalog)
	if err != nil {
		return nil, err
	}
	if err := sys.setKnowledgeFromJSON(sj.Knowledge); err != nil {
		return nil, err
	}
	sn, err := sys.Snapshot()
	if err != nil {
		return nil, err
	}
	sn.epoch = sj.Epoch
	return sn, nil
}
