package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// flakyService wraps a meter and deterministically fails every measurement
// on the configured VM names, exercising the degradation paths without
// involving the chaos engine's randomness.
type flakyService struct {
	inner   *oracle.Meter
	failVMs map[string]bool
}

func (f *flakyService) TryProfile(app workload.App, vm cloud.VMType) (sim.Profile, error) {
	if f.failVMs[vm.Name] {
		return sim.Profile{}, errors.New("flaky: injected failure on " + vm.Name)
	}
	return f.inner.TryProfile(app, vm)
}

func (f *flakyService) Runs() int             { return f.inner.Runs() }
func (f *flakyService) SimConfig() sim.Config { return f.inner.SimConfig() }

// smallCatalog is the sandbox VM plus five others — enough structure for the
// degradation tests without the cost of the 120-type catalog.
func smallCatalog(t *testing.T) []cloud.VMType {
	t.Helper()
	sandbox, ok := cloud.ByName(catalog)["m5.xlarge"]
	if !ok {
		t.Fatal("sandbox VM missing from catalog")
	}
	small := []cloud.VMType{sandbox}
	for _, vm := range catalog {
		if len(small) == 6 {
			break
		}
		if vm.Name != sandbox.Name {
			small = append(small, vm)
		}
	}
	return small
}

// smallTrainedSystem trains a compact Vesta instance (6 sources, 6 VM types,
// k=3) through the given service. Fast enough to retrain per test.
func smallTrainedSystem(t *testing.T, svc oracle.Service) *System {
	t.Helper()
	sys, err := New(Config{Seed: 1, K: 3}, smallCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining)[:6], svc); err != nil {
		t.Fatal(err)
	}
	return sys
}

func smallMeter() *oracle.Meter {
	return oracle.NewMeter(sim.New(sim.Config{Repeats: 3}), 1)
}

func TestPredictOnlineSandboxFailed(t *testing.T) {
	sys := smallTrainedSystem(t, smallMeter())
	flaky := &flakyService{inner: smallMeter(), failVMs: map[string]bool{sys.Config().SandboxVM: true}}
	_, err := sys.PredictOnline(mustApp(t, "Spark-lr"), flaky)
	if !errors.Is(err, ErrSandboxFailed) {
		t.Fatalf("want ErrSandboxFailed, got %v", err)
	}
}

// TestPredictOnlineSubstitutesFailedReference: when one of the random
// reference VMs fails, the predictor walks to the next VM in the permutation
// and still initializes from a full set of observations.
func TestPredictOnlineSubstitutesFailedReference(t *testing.T) {
	sys := smallTrainedSystem(t, smallMeter())
	target := mustApp(t, "Spark-lr")

	base, err := sys.PredictOnline(target, smallMeter())
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for vm := range base.ObservedSec {
		if vm != sys.Config().SandboxVM {
			victim = vm
			break
		}
	}
	if victim == "" {
		t.Fatal("baseline prediction observed no random VMs")
	}

	flaky := &flakyService{inner: smallMeter(), failVMs: map[string]bool{victim: true}}
	pred, err := sys.PredictOnline(target, flaky)
	if err != nil {
		t.Fatal(err)
	}
	if pred.InitFailures != 1 {
		t.Fatalf("InitFailures = %d, want 1", pred.InitFailures)
	}
	if _, seen := pred.ObservedSec[victim]; seen {
		t.Fatalf("failed VM %s appears in observations", victim)
	}
	// Sandbox + 3 picks: the failed pick was substituted, not dropped.
	if len(pred.ObservedSec) != 4 {
		t.Fatalf("observed %d VMs, want 4 (substitution)", len(pred.ObservedSec))
	}
	if pred.Best.Name == "" {
		t.Fatal("no best VM predicted")
	}
}

// TestPredictOnlineSandboxOnlyCalibration: with every non-sandbox VM failing
// there are zero surviving random observations; the prediction degrades to a
// sandbox-anchored calibration instead of erroring out.
func TestPredictOnlineSandboxOnlyCalibration(t *testing.T) {
	sys := smallTrainedSystem(t, smallMeter())
	sandbox := sys.Config().SandboxVM
	fail := map[string]bool{}
	for _, vm := range smallCatalog(t) {
		if vm.Name != sandbox {
			fail[vm.Name] = true
		}
	}
	flaky := &flakyService{inner: smallMeter(), failVMs: fail}
	pred, err := sys.PredictOnline(mustApp(t, "Spark-lr"), flaky)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.ObservedSec) != 1 {
		t.Fatalf("observed %d VMs, want sandbox only", len(pred.ObservedSec))
	}
	if pred.InitFailures != len(fail) {
		t.Fatalf("InitFailures = %d, want %d (whole permutation exhausted)", pred.InitFailures, len(fail))
	}
	// The sandbox observation is authoritative and anchors the time scale.
	if got := pred.PredictedSec[sandbox]; got != pred.ObservedSec[sandbox] {
		t.Fatalf("sandbox predicted %v, measured %v", got, pred.ObservedSec[sandbox])
	}
	for vm, sec := range pred.PredictedSec {
		if math.IsNaN(sec) || sec <= 0 {
			t.Fatalf("degraded prediction for %s is %v", vm, sec)
		}
	}
}

func TestCollectOfflineCountsSkippedCells(t *testing.T) {
	small := smallCatalog(t)
	sys, err := New(Config{Seed: 1, K: 3}, small)
	if err != nil {
		t.Fatal(err)
	}
	sources := workload.BySet(workload.SourceTraining)[:4]
	victim := small[1].Name
	flaky := &flakyService{inner: smallMeter(), failVMs: map[string]bool{victim: true}}

	data := sys.CollectOffline(sources, flaky)
	if data.SkippedCells != len(sources) {
		t.Fatalf("SkippedCells = %d, want %d (one per source)", data.SkippedCells, len(sources))
	}
	if len(data.DroppedSources) != 0 {
		t.Fatalf("sandbox survived but sources dropped: %v", data.DroppedSources)
	}
	if len(data.Sources) != len(sources) {
		t.Fatalf("kept %d sources, want %d", len(data.Sources), len(sources))
	}
	for _, app := range sources {
		if _, ok := data.Times[app.Name][victim]; ok {
			t.Fatalf("failed cell (%s, %s) present in Times", app.Name, victim)
		}
	}
	// The model trains without the missing column.
	if err := sys.TrainFromData(data); err != nil {
		t.Fatal(err)
	}
	if k := sys.Knowledge(); k.SkippedCells != len(sources) {
		t.Fatalf("Knowledge.SkippedCells = %d, want %d", k.SkippedCells, len(sources))
	}
}

func TestCollectOfflineDropsSourcesWithoutSandbox(t *testing.T) {
	sys, err := New(Config{Seed: 1, K: 3}, smallCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	sources := workload.BySet(workload.SourceTraining)[:4]
	flaky := &flakyService{inner: smallMeter(), failVMs: map[string]bool{sys.Config().SandboxVM: true}}

	data := sys.CollectOffline(sources, flaky)
	if len(data.DroppedSources) != len(sources) || len(data.Sources) != 0 {
		t.Fatalf("dropped %d of %d sources, want all (no feature vectors)",
			len(data.DroppedSources), len(sources))
	}
	if err := sys.TrainFromData(data); err == nil {
		t.Fatal("training with zero surviving sources accepted")
	}
}

func TestTrainFromDataRejectsInvalidVectors(t *testing.T) {
	sys, err := New(Config{Seed: 1, K: 3}, smallCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	sources := workload.BySet(workload.SourceTraining)[:6]
	data := sys.CollectOffline(sources, smallMeter())
	poisoned := data.Sources[1].Name
	data.RawVecs[1][0] = math.NaN()

	if err := sys.TrainFromData(data); err != nil {
		t.Fatal(err)
	}
	k := sys.Knowledge()
	if k.InvalidVectors != 1 {
		t.Fatalf("InvalidVectors = %d, want 1", k.InvalidVectors)
	}
	if len(k.SourceNames) != len(sources)-1 {
		t.Fatalf("%d sources trained, want %d", len(k.SourceNames), len(sources)-1)
	}
	for _, name := range k.SourceNames {
		if name == poisoned {
			t.Fatalf("poisoned source %s survived training", name)
		}
	}
}

// TestChaoticTrainingDeterministicAcrossWorkers: the full offline pipeline —
// chaos-injected simulator, resilient meter with retries, graceful
// degradation in collection — must serialize byte-identical knowledge at
// every worker count.
func TestChaoticTrainingDeterministicAcrossWorkers(t *testing.T) {
	train := func(workers int) []byte {
		s := sim.New(sim.Config{Repeats: 3, Chaos: chaos.NewPlan(42, chaos.Uniform(0.1))})
		svc := oracle.NewResilient(oracle.NewMeter(s, 1), oracle.RetryPolicy{MaxRetries: 2})
		sys, err := New(Config{Seed: 1, K: 3, Workers: workers}, smallCatalog(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining)[:6], svc); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sys.SaveKnowledge(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := train(1)
	for _, w := range []int{2, 4} {
		if !bytes.Equal(train(w), ref) {
			t.Fatalf("chaotic knowledge at workers=%d differs from workers=1", w)
		}
	}
}
