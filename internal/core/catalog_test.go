package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
)

// TestAbsorbCatalogToken: a catalog update is the second kind of epoch
// increment — epoch and catalog version advance together, the workload count
// does not, and the receiver keeps its view.
func TestAbsorbCatalogToken(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	base := snap.Workloads()
	next, err := snap.AbsorbCatalog(cloud.Update{Reprice: map[string]float64{"c5.large": 0.1234}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 1 || next.CatalogVersion() != 1 || next.Workloads() != base {
		t.Fatalf("next token (epoch %d, catalog %d, workloads %d), want (1, 1, %d)",
			next.Epoch(), next.CatalogVersion(), next.Workloads(), base)
	}
	if snap.Epoch() != 0 || snap.CatalogVersion() != 0 {
		t.Fatal("AbsorbCatalog mutated its receiver's token")
	}
	if v, _ := snap.VM("c5.large"); v.PriceHour == 0.1234 {
		t.Fatal("reprice leaked into the receiver")
	}
	if v, ok := next.VM("c5.large"); !ok || v.PriceHour != 0.1234 {
		t.Fatalf("reprice missing from the successor: %+v ok=%v", v, ok)
	}

	// The two increment kinds interleave: absorb on top of a catalog update.
	pred, err := next.Predict(mustApp(t, "Spark-kmeans"), oracle.NewMeter(sim.New(sim.DefaultConfig()), 7))
	if err != nil {
		t.Fatal(err)
	}
	third, err := next.Absorb("t1", pred.LabelWeights, pred.PrunedVec)
	if err != nil {
		t.Fatal(err)
	}
	if third.Epoch() != 2 || third.CatalogVersion() != 1 || third.Workloads() != base+1 {
		t.Fatalf("interleaved token (epoch %d, catalog %d, workloads %d), want (2, 1, %d)",
			third.Epoch(), third.CatalogVersion(), third.Workloads(), base+1)
	}
}

func TestAbsorbCatalogRefusesSandboxRetire(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.AbsorbCatalog(cloud.Update{Retire: []string{snap.Config().SandboxVM}}); err == nil ||
		!strings.Contains(err.Error(), "sandbox") {
		t.Fatalf("sandbox retire: %v", err)
	}
	if _, err := snap.AbsorbCatalog(cloud.Update{}); err == nil {
		t.Fatal("empty update accepted")
	}
}

// TestAbsorbCatalogDeterministicAtVersion: two independent lineages applying
// the same update sequence land on the same (epoch, catalog version) with
// bit-identical predictions — the determinism half of the acceptance
// contract for catalog-stamped rankings.
func TestAbsorbCatalogDeterministicAtVersion(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ups := []cloud.Update{
		{Retire: []string{"c4.large"}, Reprice: map[string]float64{"m5.2xlarge": 0.5}},
		{Add: cloud.GCPCatalog()},
	}
	lineage := func() *Snapshot {
		cur := snap
		for _, u := range ups {
			next, err := cur.AbsorbCatalog(u)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		return cur
	}
	a, b := lineage(), lineage()
	if a.Epoch() != b.Epoch() || a.CatalogVersion() != b.CatalogVersion() {
		t.Fatalf("tokens differ: (%d,%d) vs (%d,%d)",
			a.Epoch(), a.CatalogVersion(), b.Epoch(), b.CatalogVersion())
	}
	app := mustApp(t, "Spark-lr")
	pa, err := a.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 9))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatal("identical lineages predict differently at the same (epoch, catalog version)")
	}
	// And the encodings agree byte for byte.
	var ba, bb bytes.Buffer
	if err := a.Encode(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("identical lineages encode differently")
	}
}

// TestAbsorbCatalogRankingProjection: rankings always speak the current
// catalog version — retirees disappear, newcomers are interpolated in, and
// survivors keep their trained scores.
func TestAbsorbCatalogRankingProjection(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "Spark-kmeans")
	meter := func() *oracle.Meter { return oracle.NewMeter(sim.New(sim.DefaultConfig()), 11) }
	basePred, err := snap.Predict(app, meter())
	if err != nil {
		t.Fatal(err)
	}
	retiree := basePred.Ranking[0].VM
	if retiree == snap.Config().SandboxVM {
		retiree = basePred.Ranking[1].VM
	}
	// twin is a resource-for-resource copy of an existing type under a new
	// name: interpolation must give it exactly its twin's score (the
	// distance-0 path of interpolateScore).
	twin, ok := snap.VM("c5.2xlarge")
	if !ok {
		t.Fatal("c5.2xlarge missing from the base catalog")
	}
	twin.Name = "c5twin.2xlarge"
	next, err := snap.AbsorbCatalog(cloud.Update{
		Retire: []string{retiree},
		Add:    append(cloud.GCPCatalog(), twin),
	})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := next.Predict(app, meter())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(basePred.Ranking) - 1 + len(cloud.GCPCatalog()) + 1; len(pred.Ranking) != want {
		t.Fatalf("projected ranking has %d entries, want %d", len(pred.Ranking), want)
	}
	sawGCP := false
	for _, r := range pred.Ranking {
		if r.VM == retiree {
			t.Fatalf("retired %q still ranked", retiree)
		}
		if v, ok := next.VM(r.VM); !ok {
			t.Fatalf("ranking names %q, not in catalog version %d", r.VM, next.CatalogVersion())
		} else if v.Provider == cloud.ProviderGCP {
			sawGCP = true
		}
	}
	if !sawGCP {
		t.Fatal("no interpolated GCP type in the projected ranking")
	}
	// The resource twin inherits its twin's score exactly.
	scoreOf := func(p *Prediction, vm string) (float64, bool) {
		for _, r := range p.Ranking {
			if r.VM == vm {
				return r.Score, true
			}
		}
		return 0, false
	}
	orig, ok1 := scoreOf(pred, "c5.2xlarge")
	clone, ok2 := scoreOf(pred, "c5twin.2xlarge")
	if !ok1 || !ok2 || orig != clone {
		t.Fatalf("resource twin scored %v (ok %v), its twin %v (ok %v): want exact equality",
			clone, ok2, orig, ok1)
	}

	// And the projection is deterministic: the same lineage with the same
	// meter stream yields the identical ranking.
	again, err := next.Predict(app, meter())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pred.Ranking, again.Ranking) {
		t.Fatal("projected ranking not deterministic for a fixed (snapshot, meter stream)")
	}
}

// TestAbsorbCatalogCodecRoundTrip: the snapshot codec carries the catalog
// version and the evolved catalog; decoding reproduces the exact state, and
// version-0 snapshots stay byte-compatible with the legacy encoding (no
// catalog fields emitted).
func TestAbsorbCatalogCodecRoundTrip(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var v0 bytes.Buffer
	if err := snap.Encode(&v0); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(v0.Bytes(), []byte(`"catalog_version"`)) {
		t.Fatal("version-0 snapshot emits catalog fields (legacy byte-compat broken)")
	}

	next, err := snap.AbsorbCatalog(cloud.Update{
		Retire:  []string{"c4.large"},
		Reprice: map[string]float64{"m5.xlarge": 0.4444},
		Add:     cloud.AzureCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := next.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()), snap.Config(), snap.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch() != next.Epoch() || dec.CatalogVersion() != next.CatalogVersion() {
		t.Fatalf("decoded token (%d, %d), want (%d, %d)",
			dec.Epoch(), dec.CatalogVersion(), next.Epoch(), next.CatalogVersion())
	}
	if v, ok := dec.VM("m5.xlarge"); !ok || v.PriceHour != 0.4444 {
		t.Fatalf("decoded catalog lost the reprice: %+v ok=%v", v, ok)
	}
	if _, ok := dec.VM("c4.large"); ok {
		t.Fatal("decoded catalog resurrected the retiree")
	}
	var re bytes.Buffer
	if err := dec.Encode(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), re.Bytes()) {
		t.Fatal("decode → encode is not a fixed point for catalog-bearing snapshots")
	}
}
