package core

import "testing"

// Regression tests for the budget floor: the sequential protocol used to
// record the sandbox initialization run before any budget check, so a
// zero-run budget still produced one step.

func TestOptimizeNegativeBudgetRejected(t *testing.T) {
	sys, meter := trainedSystem(t)
	if _, _, err := sys.Optimize(mustApp(t, "Spark-lr"), -1, meter); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, _, err := sys.OptimizeFor(mustApp(t, "Spark-lr"), -5, MinimizeBudget, meter); err == nil {
		t.Fatal("negative budget accepted by OptimizeFor")
	}
}

func TestOptimizeZeroBudgetRecordsNothing(t *testing.T) {
	sys, meter := trainedSystem(t)
	meter.Reset()
	steps, pred, err := sys.Optimize(mustApp(t, "Spark-lr"), 0, meter)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatalf("budget 0 recorded %d steps, want 0", len(steps))
	}
	if pred.OnlineRuns != 0 {
		t.Fatalf("budget 0 reported OnlineRuns = %d, want 0", pred.OnlineRuns)
	}
	// The initialization still charged the meter (Figure-8 accounting): a
	// budget of 0 caps the recorded protocol, not the prediction's cost.
	if meter.Runs() != 1+sys.Config().InitRandomVMs {
		t.Fatalf("metered %d runs, want %d initialization runs",
			meter.Runs(), 1+sys.Config().InitRandomVMs)
	}
}

func TestOptimizeBudgetFloorsEveryStep(t *testing.T) {
	sys, meter := trainedSystem(t)
	for budget := 1; budget <= 5; budget++ {
		steps, pred, err := sys.Optimize(mustApp(t, "Spark-lr"), budget, meter)
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) != budget {
			t.Fatalf("budget %d recorded %d steps", budget, len(steps))
		}
		if pred.OnlineRuns != budget {
			t.Fatalf("budget %d reported OnlineRuns = %d", budget, pred.OnlineRuns)
		}
		if steps[0].VM != sys.Config().SandboxVM {
			t.Fatalf("budget %d first step %s, want sandbox", budget, steps[0].VM)
		}
	}
}
