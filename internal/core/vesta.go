// Package core implements Vesta, the paper's primary contribution: a
// transfer-learning VM-type selector for big data applications across
// frameworks (Sections 3 and 4).
//
// Offline phase (Data Collector + Correlation Analyzer):
//
//  1. Profile every source workload on every VM type through the metered
//     measurement service (Algorithm 1 line 1).
//  2. Derive each workload's Table 1 correlation-similarity vector, prune
//     irrelevant features with PCA (Figure 9), and group workloads into k
//     labels with K-Means (k = 9 after Figure 11's tuning).
//  3. Build the two-layer bipartite graph: workload-label memberships (U)
//     and label-VM affinities (V) aggregated from normalized performance.
//
// Online phase (Online Predictor):
//
//  1. Run the target on a sandbox VM plus 3 randomly picked VM types
//     (Section 4.2) — the only measurements charged to the new framework.
//  2. Place the target in label space via CMF with shared label factors,
//     treating the noisy single-run memberships as sparse observations
//     (Algorithm 1 lines 5-12).
//  3. Walk the bipartite graph to rank VM types, calibrate absolute time
//     predictions with the observed runs, and return the best VM.
//
// A convergence limitation (Section 5.3) guards targets that cannot match
// the offline knowledge — the Spark-CF case — by falling back to the raw
// sandbox memberships.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vesta/internal/bipartite"
	"vesta/internal/cloud"
	"vesta/internal/cmf"
	"vesta/internal/kmeans"
	"vesta/internal/mat"
	"vesta/internal/metrics"
	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/parallel"
	"vesta/internal/pca"
	"vesta/internal/rng"
	"vesta/internal/sim"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// ErrSandboxFailed is returned by PredictOnline when the target's sandbox
// initialization run is unrecoverable: without it there is no feature
// vector, no label placement, and no calibration anchor — nothing to
// degrade to. Callers match with errors.Is.
var ErrSandboxFailed = errors.New("vesta: sandbox initialization run failed")

// Config tunes the Vesta system. Zero values take the paper's defaults.
type Config struct {
	// K is the number of K-Means labels; the paper tunes k = 9 (Figure 11).
	K int
	// Lambda is the CMF tradeoff; the paper's best practice is 0.75. Zero is
	// legal (a pure-source ablation) but must be marked with LambdaSet to be
	// distinguishable from the unset zero value.
	Lambda float64
	// LambdaSet marks Lambda as explicitly configured; see cmf.Config.
	LambdaSet bool
	// LatentDim is the CMF latent feature count g. Default 4.
	LatentDim int
	// PCAThreshold is the importance cut (multiple of mean importance) for
	// feature pruning. Default 0.8.
	PCAThreshold float64
	// SandboxVM is the VM type used for the target's initialization run
	// (footnote 3: any type satisfying the workload's resource needs).
	// Default "m5.xlarge".
	SandboxVM string
	// InitRandomVMs is the number of randomly picked VM types profiled to
	// initialize the CMF model. The paper uses 3.
	InitRandomVMs int
	// ObservedLabels is how many of the strongest sandbox memberships are
	// treated as observed entries of the sparse U* row. Default 3.
	ObservedLabels int
	// MatchThreshold is the convergence limitation: a target whose pruned
	// correlation vector is farther than this from every source workload
	// cannot match the offline knowledge and falls back to sandbox-only
	// prediction. Default 0.80 (calibrated so the paper's two outliers,
	// Spark-svd++ and Spark-CF, trip it while the other targets transfer;
	// the margin to the worst-matched regular target is comfortable).
	MatchThreshold float64
	// CMFEpochs bounds online SGD. Default 300.
	CMFEpochs int
	// UseRawFeatures replaces the Table 1 correlation vectors with raw mean
	// metric levels as the workload representation. Exists only for the
	// feature ablation in DESIGN.md — it reproduces the fragile naive-reuse
	// behaviour of Figure 2.
	UseRawFeatures bool
	// Seed drives all of Vesta's randomness.
	Seed uint64
	// Workers bounds the goroutines used by the parallel execution layer
	// (offline collection, K-Means restarts, batch predictions); <= 0 means
	// one per CPU. Results are identical at every worker count.
	Workers int
	// Tracer receives phase spans, degradation events, and the CMF/K-Means
	// gauge streams (DESIGN.md §9). Nil (the default) disables tracing at
	// the cost of a pointer check per instrumentation site; the serialized
	// trace is byte-identical at every Workers value for the same Seed.
	Tracer *obs.Tracer
}

func (c *Config) fillDefaults() {
	if c.K <= 0 {
		c.K = 9
	}
	if c.Lambda == 0 && !c.LambdaSet {
		c.Lambda = 0.75
	}
	if c.LatentDim <= 0 {
		c.LatentDim = 4
	}
	if c.PCAThreshold <= 0 {
		c.PCAThreshold = 0.8
	}
	if c.SandboxVM == "" {
		c.SandboxVM = "m5.xlarge"
	}
	if c.InitRandomVMs <= 0 {
		c.InitRandomVMs = 3
	}
	if c.ObservedLabels <= 0 {
		c.ObservedLabels = 3
	}
	if c.MatchThreshold <= 0 {
		c.MatchThreshold = 0.80
	}
	if c.CMFEpochs <= 0 {
		c.CMFEpochs = 300
	}
}

// Knowledge is the abstracted offline knowledge (Section 3.1-3.2).
type Knowledge struct {
	Labels []string
	// Kept are the PCA-selected correlation feature indices.
	Kept []int
	PCA  *pca.Result
	KM   *kmeans.Model
	// Graph is the two-layer bipartite graph with source (blue) edges.
	Graph *bipartite.Graph
	// SourceNames, SourceVecs and SourceMemberships are row-aligned.
	SourceNames       []string
	SourceVecs        [][]float64 // pruned correlation vectors
	SourceMemberships [][]float64 // soft label memberships (U rows)
	// Sigma is the membership kernel bandwidth (the clustering's own
	// dispersion scale).
	Sigma float64
	// BestTimes[app] is the source app's best observed P90 time.
	BestTimes map[string]float64
	// Times[app][vm] are the profiled P90 times.
	Times map[string]map[string]float64
	// OfflineRuns is the reference-VM count charged during training.
	OfflineRuns int
	// SkippedCells counts (source, VM) measurements missing from Times
	// (abandoned by the meter); the affected label-VM affinities aggregate
	// over the surviving sources only.
	SkippedCells int
	// DroppedSources lists sources excluded during collection (no sandbox
	// measurement, hence no feature vector).
	DroppedSources []string
	// InvalidVectors counts sources rejected at training time because their
	// feature vector contained NaN/Inf.
	InvalidVectors int
}

// Prediction is the outcome of the online phase for one target workload.
type Prediction struct {
	Target string
	// Best is the predicted best VM type.
	Best cloud.VMType
	// Ranking lists every VM, best first.
	Ranking []bipartite.VMScore
	// PredictedSec maps VM name to predicted execution time.
	PredictedSec map[string]float64
	// LabelWeights is the (completed) U* row used for the graph walk.
	LabelWeights []float64
	// PrunedVec is the target's PCA-pruned correlation vector — exactly the
	// shape AbsorbTarget (and Snapshot.Absorb) expects, so a completed
	// prediction can join the knowledge graph without re-profiling.
	PrunedVec []float64
	// Converged is false when the SGD did not converge or the target could
	// not match the offline knowledge (Spark-CF case).
	Converged bool
	// MatchDistance is the distance to the closest source in label space.
	MatchDistance float64
	// OnlineRuns is the reference-VM count charged for this target.
	OnlineRuns int
	// ObservedSec holds the measurements taken (sandbox + random VMs).
	ObservedSec map[string]float64
	// ObservedLatencyMS holds the P90 streaming latency of the same runs
	// (zero entries for batch workloads). Used by the latency extension.
	ObservedLatencyMS map[string]float64
	// InitFailures counts reference-VM candidates abandoned during the
	// random-pick initialization; each was substituted by the next VM in
	// the permutation (or skipped when the catalog ran out).
	InitFailures int
}

// System is a Vesta instance bound to a VM catalog. The catalog is
// versioned: catVersion 0 is the catalog the system was constructed over,
// and every Snapshot.AbsorbCatalog produces a successor system with the
// updated catalog at catVersion+1. The knowledge graph's VM vocabulary stays
// frozen at training time; trained retains those types (by name) so
// rankings can be projected onto later catalog versions (see adaptRanking).
type System struct {
	cfg        Config
	catalog    []cloud.VMType
	byName     map[string]cloud.VMType
	catVersion uint64
	// trained indexes the construction-time catalog: the resource vectors
	// the graph's VM nodes were embedded with. Never mutated after New;
	// shared (not copied) by every clone in the lineage.
	trained   map[string]cloud.VMType
	knowledge *Knowledge
}

// New creates a Vesta system over the given catalog.
func New(cfg Config, catalog []cloud.VMType) (*System, error) {
	cfg.fillDefaults()
	if len(catalog) == 0 {
		return nil, fmt.Errorf("vesta: empty catalog")
	}
	byName := cloud.ByName(catalog)
	if _, ok := byName[cfg.SandboxVM]; !ok {
		return nil, fmt.Errorf("vesta: sandbox VM %q not in catalog", cfg.SandboxVM)
	}
	return &System{
		cfg:     cfg,
		catalog: append([]cloud.VMType(nil), catalog...),
		byName:  byName,
		trained: byName,
	}, nil
}

// CatalogVersion returns the catalog version the system currently selects
// against (0 = the construction-time catalog).
func (s *System) CatalogVersion() uint64 { return s.catVersion }

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// Knowledge returns the trained offline knowledge, or nil before training.
func (s *System) Knowledge() *Knowledge { return s.knowledge }

// OfflineData holds the raw measurements of the offline profiling phase,
// decoupled from model building so that experiments (e.g. Figure 11's
// cross-validation) can re-train models on subsets without re-profiling.
type OfflineData struct {
	Sources []workload.App
	// Times[app][vm] is the profiled P90 execution time.
	Times map[string]map[string]float64
	// RawVecs[i] is source i's full 10-dimensional correlation vector.
	RawVecs [][]float64
	// Runs is the reference-VM count charged while collecting, including
	// retried and abandoned campaigns (Figure-8 accounting).
	Runs int
	// SkippedCells counts (source, VM) measurements the meter abandoned;
	// their Times entries are absent and the model trains without them.
	SkippedCells int
	// DroppedSources lists sources excluded entirely because their sandbox
	// measurement — the feature-vector anchor — was unrecoverable.
	DroppedSources []string
}

// Subset returns the offline data restricted to the sources at the given
// indices (for cross-validation folds).
func (d *OfflineData) Subset(idx []int) *OfflineData {
	out := &OfflineData{Times: map[string]map[string]float64{}}
	for _, i := range idx {
		app := d.Sources[i]
		out.Sources = append(out.Sources, app)
		out.Times[app.Name] = d.Times[app.Name]
		out.RawVecs = append(out.RawVecs, d.RawVecs[i])
	}
	return out
}

// CollectOffline performs Algorithm 1 line 1: run every source workload on
// every VM type through the meter and collect the metrics. The correlation
// vectors are taken at the common sandbox VM so that source and target
// vectors are measured under comparable conditions; every run's time feeds
// the label-VM performance layer.
func (s *System) CollectOffline(sources []workload.App, meter oracle.Service) *OfflineData {
	defer s.cfg.Tracer.Start("offline/collect").End()
	startRuns := meter.Runs()
	data := &OfflineData{
		Times: make(map[string]map[string]float64, len(sources)),
	}
	// Each source's profiling sweep is independent (fixed per-(app, VM)
	// seeds), so the collection fans out one worker per source. Results are
	// byte-identical to a sequential sweep; only the meter's log order
	// varies.
	type appResult struct {
		times   map[string]float64
		vec     []float64
		skipped int
	}
	results := parallel.MapObs(s.cfg.Tracer, "offline/collect", s.cfg.Workers, len(sources), func(i int) appResult {
		app := sources[i]
		r := appResult{times: make(map[string]float64, len(s.catalog))}
		sandboxSeen := false
		for _, vm := range s.catalog {
			p, err := meter.TryProfile(app, vm)
			if err != nil {
				// Unrecoverable cell: train without it. A failed sandbox
				// cell additionally costs the feature vector, handled below.
				r.skipped++
				if vm.Name == s.cfg.SandboxVM {
					sandboxSeen = true
				}
				continue
			}
			r.times[vm.Name] = p.P90Seconds
			if vm.Name == s.cfg.SandboxVM {
				sandboxSeen = true
				r.vec = s.featureVector(p)
			}
		}
		if !sandboxSeen {
			// Sandbox VM not in the profiling catalog: profile it
			// explicitly.
			if p, err := meter.TryProfile(app, s.byName[s.cfg.SandboxVM]); err == nil {
				r.vec = s.featureVector(p)
			} else {
				r.skipped++
			}
		}
		return r
	})
	for i, app := range sources {
		data.SkippedCells += results[i].skipped
		if results[i].vec == nil {
			// No sandbox measurement means no workload representation: the
			// source cannot join the correlation analysis at all.
			data.DroppedSources = append(data.DroppedSources, app.Name)
			s.cfg.Tracer.Event("offline/dropped/"+app.Name, "no sandbox measurement")
			continue
		}
		data.Sources = append(data.Sources, app)
		data.Times[app.Name] = results[i].times
		data.RawVecs = append(data.RawVecs, results[i].vec)
	}
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Count("core.skipped_cells", int64(data.SkippedCells))
		s.cfg.Tracer.Count("core.dropped_sources", int64(len(data.DroppedSources)))
	}
	data.Runs = meter.Runs() - startRuns
	return data
}

// featureVector extracts the workload representation from a profile: the
// Table 1 correlation-similarity vector by default, or (for the ablation in
// DESIGN.md) the raw mean metric levels when UseRawFeatures is set.
func (s *System) featureVector(p sim.Profile) []float64 {
	if !s.cfg.UseRawFeatures {
		return p.Corr.Slice()
	}
	out := make([]float64, 0, int(metrics.NumSeries))
	for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
		sum := 0.0
		for _, v := range p.Trace.Series[id] {
			sum += v
		}
		out = append(out, sum/float64(p.Trace.Len()))
	}
	return out
}

// TrainOffline runs the offline profiling phase on the source workloads
// (Algorithm 1 lines 1, 3-5). All measurements go through the meter.
func (s *System) TrainOffline(sources []workload.App, meter oracle.Service) error {
	if len(sources) < 2 {
		return fmt.Errorf("vesta: need at least 2 source workloads, got %d", len(sources))
	}
	if s.cfg.K > len(sources) {
		return fmt.Errorf("vesta: k=%d exceeds %d source workloads", s.cfg.K, len(sources))
	}
	return s.TrainFromData(s.CollectOffline(sources, meter))
}

// finiteVec reports whether every component is finite (no NaN/Inf). A single
// corrupt trace must not poison PCA loadings or K-Means centroids.
func finiteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// TrainFromData builds the offline model (Algorithm 1 lines 3-5) from
// already-collected measurements.
func (s *System) TrainFromData(data *OfflineData) error {
	defer s.cfg.Tracer.Start("offline/train").End()
	sources := data.Sources
	times := data.Times
	rawVecs := data.RawVecs
	// Degradation guard (satellite of the failure model): reject NaN/Inf
	// feature vectors with a counted skip instead of letting one corrupt
	// trace poison the PCA loadings and every centroid downstream.
	invalidVecs := 0
	for i, rv := range rawVecs {
		if !finiteVec(rv) {
			invalidVecs++
			s.cfg.Tracer.Event("offline/invalid-vector/"+data.Sources[i].Name,
				"non-finite feature vector rejected")
			if invalidVecs == 1 {
				// Copy-on-write: don't mutate the caller's OfflineData.
				sources = append([]workload.App(nil), sources[:i]...)
				rawVecs = append([][]float64(nil), rawVecs[:i]...)
			}
			continue
		}
		if invalidVecs > 0 {
			sources = append(sources, data.Sources[i])
			rawVecs = append(rawVecs, rv)
		}
	}
	if invalidVecs > 0 {
		s.cfg.Tracer.Count("core.invalid_vectors", int64(invalidVecs))
	}
	if len(sources) < 2 {
		return fmt.Errorf("vesta: need at least 2 source workloads, got %d", len(sources))
	}
	if s.cfg.K > len(sources) {
		return fmt.Errorf("vesta: k=%d exceeds %d source workloads", s.cfg.K, len(sources))
	}

	// Line 3: correlation analysis + PCA importance pruning.
	pcaSpan := s.cfg.Tracer.Start("offline/pca")
	pcaRes, err := pca.Fit(rawVecs)
	if err != nil {
		return fmt.Errorf("vesta: PCA failed: %w", err)
	}
	kept := pcaRes.SelectFeatures(s.cfg.PCAThreshold)
	if len(kept) == 0 {
		return fmt.Errorf("vesta: PCA pruned every feature")
	}
	sort.Ints(kept)
	pcaSpan.End()
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Event("offline/pca/kept", fmt.Sprintf("features=%v of %d", kept, len(rawVecs[0])))
	}
	vecs := make([][]float64, len(sources))
	for i, rv := range rawVecs {
		vecs[i] = project(rv, kept)
	}

	// Line 4: group relationships via K-Means.
	kmSpan := s.cfg.Tracer.Start("offline/kmeans")
	km, err := kmeans.Fit(vecs, kmeans.Config{K: s.cfg.K, Restarts: 6, Workers: s.cfg.Workers,
		Tracer: s.cfg.Tracer, TraceKey: "offline/kmeans"},
		rng.New(s.cfg.Seed+101))
	if err != nil {
		return fmt.Errorf("vesta: K-Means failed: %w", err)
	}
	kmSpan.End()

	labels := make([]string, s.cfg.K)
	for j := range labels {
		labels[j] = fmt.Sprintf("label-%d", j)
	}
	vmNames := make([]string, len(s.catalog))
	for i, v := range s.catalog {
		vmNames[i] = v.Name
	}
	graph, err := bipartite.New(labels, vmNames)
	if err != nil {
		return err
	}

	// Membership kernel bandwidth: the clustering's own dispersion plus a
	// floor so exact-centroid hits still spread a little.
	sigma := math.Sqrt(km.Inertia/float64(len(sources))) + 0.05

	// Workload-label layer: soft memberships (the blue edges).
	memberships := make([][]float64, len(sources))
	best := make(map[string]float64, len(sources))
	for i, app := range sources {
		memberships[i] = sharpMemberships(km, vecs[i], sigma)
		if err := graph.AddWorkload(app.Name, bipartite.SourceEdge, memberships[i]); err != nil {
			return err
		}
		b := math.Inf(1)
		for _, sec := range times[app.Name] {
			if sec < b {
				b = sec
			}
		}
		best[app.Name] = b
	}

	// Label-VM layer: membership-weighted normalized performance. Cells the
	// meter abandoned are absent from Times; the affinity aggregates over
	// the sources that were measured on this VM.
	for j := 0; j < s.cfg.K; j++ {
		for _, vm := range s.catalog {
			num, den := 0.0, 0.0
			for i, app := range sources {
				sec, ok := times[app.Name][vm.Name]
				if !ok || sec <= 0 {
					continue
				}
				w := memberships[i][j]
				perf := best[app.Name] / sec // 1.0 = best
				num += w * perf
				den += w
			}
			if den > 0 {
				if err := graph.SetLabelVM(labels[j], vm.Name, num/den); err != nil {
					return err
				}
			}
		}
	}

	names := make([]string, len(sources))
	for i, app := range sources {
		names[i] = app.Name
	}
	s.knowledge = &Knowledge{
		Labels: labels, Kept: kept, PCA: pcaRes, KM: km, Graph: graph,
		SourceNames: names, SourceVecs: vecs, SourceMemberships: memberships,
		Sigma: sigma, BestTimes: best, Times: times,
		OfflineRuns:    data.Runs,
		SkippedCells:   data.SkippedCells,
		DroppedSources: append([]string(nil), data.DroppedSources...),
		InvalidVectors: invalidVecs,
	}
	return nil
}

// sharpMemberships maps a pruned correlation vector to label weights with a
// Gaussian kernel over centroid distances. Unlike plain inverse-distance
// weights, the kernel concentrates mass on nearby labels, so a target that
// clearly resembles one source group inherits that group's VM preferences
// instead of the catalog-wide average.
func sharpMemberships(km *kmeans.Model, vec []float64, sigma float64) []float64 {
	w := make([]float64, km.K)
	total := 0.0
	for c := 0; c < km.K; c++ {
		d := km.DistanceTo(vec, c)
		w[c] = math.Exp(-(d * d) / (2 * sigma * sigma))
		total += w[c]
	}
	if total <= 0 {
		// All distances astronomically large: fall back to the nearest.
		w[km.Predict(vec)] = 1
		return w
	}
	for c := range w {
		w[c] /= total
	}
	return w
}

// project selects the kept feature indices from a full vector.
func project(v []float64, kept []int) []float64 {
	out := make([]float64, len(kept))
	for i, j := range kept {
		out[i] = v[j]
	}
	return out
}

// PredictOnline runs the online predicting phase for one target workload
// (Section 4.2, Algorithm 1 lines 2, 5-14).
//
// Degradation ladder under fault injection: a failed random-pick VM is
// substituted by the next VM in the same random permutation (the paper's
// protocol just asks for random reference points, not specific ones);
// calibration uses however many observations survived. Only an
// unrecoverable sandbox run — the target's feature vector and calibration
// anchor — aborts the prediction, with ErrSandboxFailed.
func (s *System) PredictOnline(target workload.App, meter oracle.Service) (*Prediction, error) {
	return s.predictWith(target, meter, nil, false)
}

// predictWith is the online phase parameterized by an optional precomputed
// plan (see plan.go and Snapshot.PredictFast). A nil plan is the historical
// cold path, bit-identical to every release before plans existed.
func (s *System) predictWith(target workload.App, meter oracle.Service, plan *predictPlan, approx bool) (*Prediction, error) {
	k := s.knowledge
	if k == nil {
		return nil, fmt.Errorf("vesta: PredictOnline before TrainOffline")
	}
	traceKey := ""
	if s.cfg.Tracer.Enabled() {
		traceKey = "predict/" + target.Name
		defer s.cfg.Tracer.Start(traceKey).End()
	}
	startRuns := meter.Runs()
	src := rng.New(s.cfg.Seed ^ hashString(target.Name))

	observed := map[string]float64{}
	observedLat := map[string]float64{}

	// Line 2: sandbox initialization run.
	sandbox := s.byName[s.cfg.SandboxVM]
	sp, err := meter.TryProfile(target, sandbox)
	if err != nil {
		return nil, fmt.Errorf("%w: %s on %s: %v", ErrSandboxFailed, target.Name, sandbox.Name, err)
	}
	observed[sandbox.Name] = sp.P90Seconds
	observedLat[sandbox.Name] = sp.P90LatencyMS
	fv := s.featureVector(sp)
	if !finiteVec(fv) {
		return nil, fmt.Errorf("%w: %s on %s: corrupt feature vector", ErrSandboxFailed, target.Name, sandbox.Name)
	}
	targetVec := project(fv, k.Kept)
	rawMembership := sharpMemberships(k.KM, targetVec, k.Sigma)

	// 3 randomly picked VM types initialize the CMF model (Section 4.2).
	// The walk goes down a single random permutation so that a failed pick
	// is replaced by the next candidate; fault-free this profiles exactly
	// the VMs Sample(n, k) == Perm(n)[:k] would have, with identical rng
	// consumption.
	pickable := make([]int, 0, len(s.catalog))
	for i, vm := range s.catalog {
		if vm.Name != sandbox.Name {
			pickable = append(pickable, i)
		}
	}
	wantPicks := min(s.cfg.InitRandomVMs, len(pickable))
	initFailures := 0
	got := 0
	for _, pi := range src.Perm(len(pickable)) {
		if got >= wantPicks {
			break
		}
		vm := s.catalog[pickable[pi]]
		p, err := meter.TryProfile(target, vm)
		if err != nil {
			initFailures++
			if traceKey != "" {
				s.cfg.Tracer.Count("core.init_failures", 1)
				s.cfg.Tracer.Event(traceKey+"/init-failure/"+vm.Name,
					"random-pick profiling abandoned; substituting next candidate")
			}
			continue
		}
		observed[vm.Name] = p.P90Seconds
		observedLat[vm.Name] = p.P90LatencyMS
		got++
	}

	// Lines 5-12: CMF with shared label factors over U, V, and sparse U*.
	weights, converged := s.transfer(rawMembership, src, traceKey, plan, approx)

	// Convergence limitation (Section 5.3): measure how well the target
	// matches the offline knowledge in correlation space. A target far from
	// every source (Spark-CF's situation) "can hardly match with current
	// knowledge", so the online process stops and falls back to the raw
	// sandbox memberships.
	matchDist := math.Inf(1)
	for _, sv := range k.SourceVecs {
		if d := mat.Distance(targetVec, sv); d < matchDist {
			matchDist = d
		}
	}
	if !converged || matchDist > s.cfg.MatchThreshold {
		if traceKey != "" {
			s.cfg.Tracer.Count("core.fallbacks", 1)
			s.cfg.Tracer.Event(traceKey+"/fallback", fmt.Sprintf(
				"sandbox-only prediction: converged=%v match_dist=%s threshold=%s",
				converged, obs.FormatValue(matchDist), obs.FormatValue(s.cfg.MatchThreshold)))
		}
		weights = rawMembership
		converged = false
	}

	// Line 14: rank VM types through the label-VM layer, then project the
	// graph-vocabulary ranking onto the current catalog version (a no-op
	// while the catalog equals the trained vocabulary).
	ranking := s.adaptRanking(k.Graph.ScoreVMsFromWeights(weights))

	calSpan := s.cfg.Tracer.Start(traceKey + "/calibrate")
	predicted := s.calibrate(ranking, observed)
	calSpan.End()

	// Pick the best-scoring VM (deterministic tie-break inside ScoreVMs).
	bestVM := s.byName[ranking[0].VM]

	return &Prediction{
		Target: target.Name, Best: bestVM, Ranking: ranking,
		PredictedSec: predicted, LabelWeights: weights, PrunedVec: targetVec,
		Converged: converged, MatchDistance: matchDist,
		OnlineRuns:        meter.Runs() - startRuns,
		ObservedSec:       observed,
		ObservedLatencyMS: observedLat,
		InitFailures:      initFailures,
	}, nil
}

// PredictBatch runs the online phase for many target workloads across the
// worker pool, one CMF solve per target. Each target draws its randomness
// from a seed derived from its own name (never from a shared Source) and
// meters through its own meter from meterFor(i), so the predictions are
// bit-identical to calling PredictOnline sequentially, at any worker count.
// The receiver's knowledge must not be mutated (e.g. by AbsorbTarget) while
// a batch is in flight.
func (s *System) PredictBatch(targets []workload.App, meterFor func(i int) oracle.Service) ([]*Prediction, error) {
	if s.knowledge == nil {
		return nil, fmt.Errorf("vesta: PredictBatch before TrainOffline")
	}
	return parallel.MapErrObs(s.cfg.Tracer, "predict/batch", s.cfg.Workers, len(targets),
		func(i int) (*Prediction, error) {
			return s.PredictOnline(targets[i], meterFor(i))
		})
}

// adaptNeighbors is how many trained VM types the score interpolation of a
// catalog newcomer averages over.
const adaptNeighbors = 5

// adaptRanking projects a knowledge-graph ranking onto the system's current
// catalog. While the catalog is exactly the trained VM vocabulary (every
// lineage at catalog version 0 over the training catalog) the ranking is
// returned untouched — bit-compatible with every release before catalogs
// became versioned. Otherwise:
//
//   - graph VMs retired from the catalog are dropped (never recommended),
//     though their scores still anchor interpolation;
//   - catalog VMs the graph has never seen (added types, other providers)
//     are scored by inverse-square-distance interpolation over their
//     adaptNeighbors nearest trained types in ResourceVector space — the
//     same embedding the label-VM layer was built from.
//
// The result is re-sorted score-descending with the name tiebreak
// ScoreVMsFromWeights uses, so downstream consumers see one deterministic
// ranking over exactly the current catalog.
func (s *System) adaptRanking(ranking []bipartite.VMScore) []bipartite.VMScore {
	if len(s.catalog) == len(ranking) {
		same := true
		for _, r := range ranking {
			if _, ok := s.byName[r.VM]; !ok {
				same = false
				break
			}
		}
		if same {
			return ranking
		}
	}
	graphScore := make(map[string]float64, len(ranking))
	for _, r := range ranking {
		graphScore[r.VM] = r.Score
	}
	out := make([]bipartite.VMScore, 0, len(s.catalog))
	for _, v := range s.catalog {
		score, ok := graphScore[v.Name]
		if !ok {
			score = s.interpolateScore(v, ranking)
		}
		out = append(out, bipartite.VMScore{VM: v.Name, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].VM < out[j].VM
	})
	return out
}

// interpolateScore estimates the graph score of a VM type outside the
// trained vocabulary: the inverse-square-distance weighted average of its
// adaptNeighbors nearest trained types in ResourceVector space. An exact
// resource twin (distance 0) takes that twin's score. Deterministic: the
// neighbor order ties-breaks on name and every input is a pure function of
// (catalog, knowledge).
func (s *System) interpolateScore(v cloud.VMType, ranking []bipartite.VMScore) float64 {
	rv := v.ResourceVector()
	type neighbor struct {
		name  string
		d     float64
		score float64
	}
	neighbors := make([]neighbor, 0, len(ranking))
	for _, r := range ranking {
		tv, ok := s.trained[r.VM]
		if !ok {
			continue // graph VM outside the trained catalog: unreachable by construction
		}
		neighbors = append(neighbors, neighbor{name: r.VM, d: mat.Distance(rv, tv.ResourceVector()), score: r.Score})
	}
	if len(neighbors) == 0 {
		return 0
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].d != neighbors[j].d {
			return neighbors[i].d < neighbors[j].d
		}
		return neighbors[i].name < neighbors[j].name
	})
	if neighbors[0].d == 0 {
		return neighbors[0].score
	}
	k := adaptNeighbors
	if k > len(neighbors) {
		k = len(neighbors)
	}
	var num, den float64
	for _, n := range neighbors[:k] {
		w := 1 / (n.d * n.d)
		num += w * n.score
		den += w
	}
	return num / den
}

// transfer builds and solves the CMF problem for one target membership row,
// returning the completed, re-normalized label weights. traceKey ("" when
// tracing is off) scopes the per-epoch CMF gauge streams to this target.
// With a non-nil plan the source matrices and observed-cell indexes come
// precomputed and the solve warm-starts from the plan's converged factors
// (FreezeSource when approx); with nil everything is built cold, the
// historical bit-exact path.
func (s *System) transfer(rawMembership []float64, src *rng.Source, traceKey string, plan *predictPlan, approx bool) ([]float64, bool) {
	k := s.knowledge
	nLabels := len(k.Labels)

	ustar := mat.New(1, nLabels)
	mask := mat.New(1, nLabels)
	// Observe only the strongest memberships: a single noisy sandbox run
	// reliably reveals the dominant label affinities, not the tail.
	type wi struct {
		w float64
		i int
	}
	order := make([]wi, nLabels)
	for i, w := range rawMembership {
		order[i] = wi{w, i}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].w != order[b].w {
			return order[a].w > order[b].w
		}
		return order[a].i < order[b].i
	})
	for n := 0; n < min(s.cfg.ObservedLabels, nLabels); n++ {
		idx := order[n].i
		ustar.Set(0, idx, rawMembership[idx])
		mask.Set(0, idx, 1)
	}

	cmfCfg := s.planCMFConfig()
	if traceKey != "" {
		cmfCfg.Tracer = s.cfg.Tracer
		cmfCfg.TraceKey = traceKey + "/cmf"
	}
	var res *cmf.Result
	var err error
	if plan != nil {
		pr, werr := plan.pr.WithTarget(ustar, mask)
		if werr != nil {
			return rawMembership, false
		}
		cmfCfg.Warm = plan.warm
		cmfCfg.FreezeSource = approx
		res, err = pr.Solve(cmfCfg, src.Jump())
	} else {
		u := mat.FromRows(k.SourceMemberships)
		v := k.Graph.LV().T() // vms x labels
		res, err = cmf.Solve(cmf.Problem{U: u, V: v, UStar: ustar, Mask: mask}, cmfCfg, src.Jump())
	}
	if err != nil {
		return rawMembership, false
	}

	completed := res.Completed.Row(0)
	// Clamp negatives and re-normalize to a membership distribution; keep
	// the observed entries authoritative.
	for i := range completed {
		if mask.At(0, i) == 1 {
			completed[i] = rawMembership[i]
		}
		if completed[i] < 0 {
			completed[i] = 0
		}
	}
	total := 0.0
	for _, w := range completed {
		total += w
	}
	if total <= 0 {
		return rawMembership, false
	}
	for i := range completed {
		completed[i] /= total
	}
	return completed, res.Converged
}

// calibrate turns graph scores into absolute time predictions using the
// observed runs. The label-VM score is proportional to normalized
// performance (best/time), so time follows a power law t = a * score^(-b);
// a and b are fit in log space from the sandbox and random-VM measurements
// (b = 1 when the observations cannot identify a slope). This is how Vesta
// anchors the transferred ranking to the new framework's absolute time
// scale with only 4 runs.
func (s *System) calibrate(ranking []bipartite.VMScore, observed map[string]float64) map[string]float64 {
	scoreOf := make(map[string]float64, len(ranking))
	for _, r := range ranking {
		scoreOf[r.VM] = r.Score
	}
	// Collect (log score, log time) pairs from the measurements, in sorted
	// VM order: map iteration order would vary the summation order of the
	// least-squares fit below and leak last-bit float differences into the
	// predictions, breaking the bit-identical reproducibility contract.
	vms := make([]string, 0, len(observed))
	for vm := range observed {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	var lx, ly []float64
	for _, vm := range vms {
		if sc, sec := scoreOf[vm], observed[vm]; sc > 1e-9 && sec > 0 {
			lx = append(lx, math.Log(sc))
			ly = append(ly, math.Log(sec))
		}
	}
	a, b := 1.0, 1.0
	switch {
	case len(lx) >= 2 && stats.StdDev(lx) > 1e-6:
		// Least-squares slope, clamped to a physically sensible range.
		b = -stats.Covariance(lx, ly) / stats.Variance(lx)
		b = math.Max(0.5, math.Min(3, b))
		a = math.Exp(stats.Mean(ly) + b*stats.Mean(lx))
	case len(lx) >= 1:
		a = math.Exp(ly[0] + lx[0]) // single observation: b = 1 fallback
	}
	out := make(map[string]float64, len(ranking))
	for _, r := range ranking {
		if r.Score > 1e-9 {
			out[r.VM] = a * math.Pow(r.Score, -b)
		} else {
			out[r.VM] = math.Inf(1)
		}
	}
	// Observed VMs report their measured time exactly.
	for vm, sec := range observed {
		out[vm] = sec
	}
	return out
}

// PredictTime returns the predicted execution time of target on vm from an
// existing prediction.
func (p *Prediction) PredictTime(vm string) (float64, error) {
	sec, ok := p.PredictedSec[vm]
	if !ok {
		return 0, fmt.Errorf("vesta: no prediction for VM %q", vm)
	}
	return sec, nil
}

// AbsorbTarget records a completed target into the knowledge graph (the red
// edges of Figure 4) and retrains the K-Means model including the target's
// correlation vector (Algorithm 1 line 13) at low cost.
func (s *System) AbsorbTarget(name string, labelWeights []float64, prunedVec []float64) error {
	k := s.knowledge
	if k == nil {
		return fmt.Errorf("vesta: AbsorbTarget before TrainOffline")
	}
	if err := k.Graph.AddWorkload(name, bipartite.TargetEdge, labelWeights); err != nil {
		return err
	}
	if len(prunedVec) != len(k.SourceVecs[0]) {
		return fmt.Errorf("vesta: pruned vector has dim %d, want %d", len(prunedVec), len(k.SourceVecs[0]))
	}
	all := append(append([][]float64(nil), k.SourceVecs...), prunedVec)
	km, err := kmeans.Fit(all, kmeans.Config{K: s.cfg.K, Restarts: 2, MaxIters: 20, Workers: s.cfg.Workers,
		Tracer: s.cfg.Tracer, TraceKey: "absorb/" + name + "/kmeans"},
		rng.New(s.cfg.Seed+997))
	if err != nil {
		return err
	}
	k.KM = km
	return nil
}

// Objective selects what a sequential optimization minimizes.
type Objective int

// Optimization objectives: the paper's two practical metrics (Section 5.2).
const (
	MinimizeTime Objective = iota
	MinimizeBudget
)

// Optimize performs the Figure 12 protocol: after the online
// initialization, Vesta tries VM types in ranking order, recording the
// best-so-far execution time and budget per run. budget counts total
// reference runs including the sandbox and random initialization.
func (s *System) Optimize(target workload.App, budget int, meter oracle.Service) ([]oracle.Step, *Prediction, error) {
	return s.OptimizeFor(target, budget, MinimizeTime, meter)
}

// OptimizeFor is Optimize with an explicit objective: for MinimizeBudget
// (Figure 13) the exploitation order follows predicted cost (predicted time
// x cluster price) instead of predicted time.
func (s *System) OptimizeFor(target workload.App, budget int, objective Objective, meter oracle.Service) ([]oracle.Step, *Prediction, error) {
	if budget < 0 {
		return nil, nil, fmt.Errorf("vesta: negative optimization budget %d", budget)
	}
	pred, err := s.PredictOnline(target, meter)
	if err != nil {
		return nil, nil, err
	}
	order := make([]string, 0, len(pred.Ranking))
	for _, r := range pred.Ranking {
		order = append(order, r.VM)
	}
	if objective == MinimizeBudget {
		nodes := float64(meter.SimConfig().Nodes)
		costOf := func(vm string) float64 {
			return pred.PredictedSec[vm] * s.byName[vm].PriceHour * nodes
		}
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := costOf(order[a]), costOf(order[b])
			if ca != cb {
				return ca < cb
			}
			return order[a] < order[b]
		})
	}
	var steps []oracle.Step
	bestSec, bestUSD := math.Inf(1), math.Inf(1)
	runIdx := 0
	record := func(vmName string, sec float64) {
		runIdx++
		vm := s.byName[vmName]
		usd := sec / 3600 * vm.PriceHour * float64(meter.SimConfig().Nodes)
		if sec < bestSec {
			bestSec = sec
		}
		if usd < bestUSD {
			bestUSD = usd
		}
		steps = append(steps, oracle.Step{Run: runIdx, VM: vmName, ObservedSec: sec,
			ObservedUSD: usd, BestSec: bestSec, BestUSD: bestUSD})
	}
	// The initialization runs count toward the budget, in a deterministic
	// order (sandbox first, then the random picks sorted by name). The budget
	// floor applies to every recorded step, the sandbox run included: with
	// budget 0 the protocol records nothing (the initialization still charged
	// the meter — Figure-8 accounting — but no trial enters the curve).
	if runIdx < budget {
		record(s.cfg.SandboxVM, pred.ObservedSec[s.cfg.SandboxVM])
	}
	var initVMs []string
	for vm := range pred.ObservedSec {
		if vm != s.cfg.SandboxVM {
			initVMs = append(initVMs, vm)
		}
	}
	sort.Strings(initVMs)
	for _, vm := range initVMs {
		if runIdx >= budget {
			break
		}
		record(vm, pred.ObservedSec[vm])
	}
	// Exploit the objective-ordered ranking.
	tried := map[string]bool{}
	for vm := range pred.ObservedSec {
		tried[vm] = true
	}
	for _, vm := range order {
		if runIdx >= budget {
			break
		}
		if tried[vm] {
			continue
		}
		tried[vm] = true
		// A VM whose measurement campaign is abandoned yields no usable
		// observation; move on to the next candidate. The wasted attempts
		// still show up in the meter's run accounting.
		p, err := meter.TryProfile(target, s.byName[vm])
		if err != nil {
			continue
		}
		record(vm, p.P90Seconds)
	}
	pred.OnlineRuns = len(steps)
	return steps, pred, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// hashString gives a stable 64-bit FNV-1a hash for seed mixing.
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
