package core

import (
	"bytes"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// pipelineTrace trains on the source workloads and predicts a batch of
// targets with tracing on, returning the serialized trace bytes.
func pipelineTrace(t *testing.T, workers int, faultRate float64) []byte {
	t.Helper()
	tracer := obs.New()
	cfg := sim.DefaultConfig()
	cfg.Tracer = tracer
	if faultRate > 0 {
		cfg.Chaos = chaos.NewPlan(1, chaos.Uniform(faultRate))
	}
	var meter oracle.Service = oracle.NewMeter(sim.New(cfg), 1).SetTracer(tracer)
	if faultRate > 0 {
		meter = oracle.NewResilient(meter.(*oracle.Meter), oracle.DefaultRetryPolicy())
	}
	sys, err := New(Config{Seed: 1, Workers: workers, Tracer: tracer}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		t.Fatal(err)
	}
	targets := workload.TargetSet()[:3]
	if _, err := sys.PredictBatch(targets, func(int) oracle.Service { return meter }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceBytesIdenticalAcrossWorkers is the observability determinism
// contract (DESIGN.md §9): the serialized trace of the full train + predict
// pipeline is byte-identical at every worker count, with and without fault
// injection.
func TestTraceBytesIdenticalAcrossWorkers(t *testing.T) {
	for _, rate := range []float64{0, 0.05} {
		w1 := pipelineTrace(t, 1, rate)
		w8 := pipelineTrace(t, 8, rate)
		if len(w1) == 0 {
			t.Fatalf("rate %v: empty trace", rate)
		}
		if !bytes.Equal(w1, w8) {
			t.Fatalf("rate %v: trace bytes differ between workers=1 (%d bytes) and workers=8 (%d bytes)",
				rate, len(w1), len(w8))
		}
	}
}

// TestTracingPreservesResults pins that turning tracing on does not perturb
// the prediction itself: the tracer observes the pipeline, it must never
// steer it (e.g. by consuming rng draws).
func TestTracingPreservesResults(t *testing.T) {
	run := func(tracer *obs.Tracer) *Prediction {
		meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1).SetTracer(tracer)
		sys, err := New(Config{Seed: 1, Tracer: tracer}, catalog)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
			t.Fatal(err)
		}
		pred, err := sys.PredictOnline(mustApp(t, "Spark-lr"), meter)
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	plain := run(nil)
	traced := run(obs.New())
	if plain.Best.Name != traced.Best.Name {
		t.Fatalf("tracing changed the prediction: %s vs %s", plain.Best.Name, traced.Best.Name)
	}
	for vm, sec := range plain.PredictedSec {
		if traced.PredictedSec[vm] != sec {
			t.Fatalf("tracing changed PredictedSec[%s]: %v vs %v", vm, sec, traced.PredictedSec[vm])
		}
	}
}
