package core

import (
	"bytes"
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// trainWithWorkers trains a fresh system on the source-training set with the
// given worker-pool bound and returns its serialized knowledge.
func trainWithWorkers(t *testing.T, workers int) []byte {
	t.Helper()
	sys, err := New(Config{Seed: 1, Workers: workers}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveKnowledge(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainOfflineWorkersBitIdentical pins the determinism contract of the
// parallel offline phase: the serialized knowledge is byte-for-byte the same
// at every worker count (profiling tasks are indexed and independently
// seeded; kmeans restarts draw from pure Split streams).
func TestTrainOfflineWorkersBitIdentical(t *testing.T) {
	ref := trainWithWorkers(t, 1)
	for _, workers := range []int{2, 8} {
		if got := trainWithWorkers(t, workers); !bytes.Equal(got, ref) {
			t.Fatalf("knowledge at workers=%d differs from workers=1", workers)
		}
	}
}

// TestPredictBatchMatchesSerial: the batch API must return exactly what a
// serial loop of PredictOnline calls with the same meters would.
func TestPredictBatchMatchesSerial(t *testing.T) {
	sys, _ := trainedSystem(t)
	targets := workload.TargetSet()[:4]
	newMeter := func(i int) oracle.Service {
		return oracle.NewMeter(sim.New(sim.DefaultConfig()), 0xB0+uint64(i))
	}

	serial := make([]*Prediction, len(targets))
	for i, app := range targets {
		p, err := sys.PredictOnline(app, newMeter(i))
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = p
	}

	for _, workers := range []int{1, 8} {
		sys.cfg.Workers = workers
		batch, err := sys.PredictBatch(targets, newMeter)
		if err != nil {
			t.Fatal(err)
		}
		for i := range targets {
			want, got := serial[i], batch[i]
			if got.Best.Name != want.Best.Name {
				t.Fatalf("workers=%d target %s: best %s, want %s",
					workers, targets[i].Name, got.Best.Name, want.Best.Name)
			}
			if got.Converged != want.Converged || got.OnlineRuns != want.OnlineRuns {
				t.Fatalf("workers=%d target %s: outcome differs", workers, targets[i].Name)
			}
			for vm, sec := range want.PredictedSec {
				if got.PredictedSec[vm] != sec {
					t.Fatalf("workers=%d target %s: predicted time for %s = %v, want %v",
						workers, targets[i].Name, vm, got.PredictedSec[vm], sec)
				}
			}
		}
	}
}

// TestPredictBatchBeforeTrain mirrors the serial API's guard.
func TestPredictBatchBeforeTrain(t *testing.T) {
	sys, _ := New(Config{}, catalog)
	_, err := sys.PredictBatch(workload.TargetSet()[:1], func(int) oracle.Service {
		return oracle.NewMeter(sim.New(sim.Config{Repeats: 2}), 1)
	})
	if err == nil {
		t.Fatal("PredictBatch before TrainOffline accepted")
	}
}
