// Predict plan: the per-request cost of the online phase is dominated by
// work that does not depend on the request at all — rebuilding the CMF
// source matrices from the knowledge graph, indexing their observed cells,
// and re-deriving the source-side factors from random initializations over
// hundreds of SGD epochs. A PredictPlan hoists all of it to snapshot publish
// time: it is a pure function of (knowledge, config), computed once per
// Absorb lineage and shared by every snapshot in it (AbsorbTarget only adds
// a workload node and refits K-Means; the source memberships U and the
// label-VM layer LV never change after offline training, so the plan stays
// valid across epochs). The serving layer invalidates implicitly through
// the (epoch, workloads) consistency token: a new lineage means a new
// snapshot chain with its own plan holder.
package core

import (
	"fmt"
	"sync"

	"vesta/internal/cmf"
	"vesta/internal/mat"
	"vesta/internal/rng"
)

// planSalt derives the plan solve's rng stream from the system seed. It is
// a fixed arbitrary constant: the plan must be reproducible from (knowledge,
// config) alone, so the stream cannot depend on any request or wall clock.
const planSalt = 0x7653507265646374 // "VsPredct"

// predictPlan is the precomputed request-independent slice of the online
// phase: the prepared CMF source problem and its converged source factors,
// plus the dense label-VM ranking layer. Immutable after construction and
// safe for concurrent use by any number of predictions.
type predictPlan struct {
	u    *mat.Matrix   // sources x labels membership matrix (U)
	lv   *mat.Matrix   // labels x vms ranking layer
	pr   *cmf.Prepared // source problem with an empty target row, cells indexed
	warm *cmf.Factors  // converged source factors of the plan solve
}

// buildPlan derives the plan from the trained knowledge: it prepares the
// source problem once and runs one cold CMF solve over the source relations
// only (the target row is present but unobserved, so X* stays at its random
// init and contributes nothing to the fit). The converged X, T, L become the
// warm seed every subsequent request-scoped solve resumes from.
func (s *System) buildPlan() (*predictPlan, error) {
	k := s.knowledge
	if k == nil {
		return nil, fmt.Errorf("vesta: plan before TrainOffline")
	}
	nLabels := len(k.Labels)
	u := mat.FromRows(k.SourceMemberships)
	lv := k.Graph.LV()
	pr, err := cmf.Prepare(cmf.Problem{
		U: u, V: lv.T(), UStar: mat.New(1, nLabels), Mask: mat.New(1, nLabels),
	})
	if err != nil {
		return nil, fmt.Errorf("vesta: preparing plan problem: %w", err)
	}
	res, err := pr.Solve(s.planCMFConfig(), rng.New(s.cfg.Seed^planSalt))
	if err != nil {
		return nil, fmt.Errorf("vesta: plan solve: %w", err)
	}
	return &predictPlan{
		u: u, lv: lv, pr: pr,
		warm: &cmf.Factors{X: res.X, T: res.T, L: res.L, Epochs: res.Epochs},
	}, nil
}

// planCMFConfig is the CMF configuration of both the plan solve and the
// request-scoped warm solves — identical to the cold transfer configuration,
// so a warm solve optimizes the same Equation 6 objective.
func (s *System) planCMFConfig() cmf.Config {
	return cmf.Config{
		LatentDim: s.cfg.LatentDim,
		Lambda:    s.cfg.Lambda,
		LambdaSet: s.cfg.LambdaSet,
		MaxEpochs: s.cfg.CMFEpochs,
	}
}

// restorePlan reconstructs a plan from decoded warm factors (a snapshot
// checkpoint's precomputed-ranking field), revalidating shapes against the
// knowledge it is about to serve.
func (s *System) restorePlan(warm *cmf.Factors) (*predictPlan, error) {
	k := s.knowledge
	if k == nil {
		return nil, fmt.Errorf("vesta: plan before TrainOffline")
	}
	nLabels := len(k.Labels)
	u := mat.FromRows(k.SourceMemberships)
	lv := k.Graph.LV()
	g := s.cfg.LatentDim
	if warm.X == nil || warm.T == nil || warm.L == nil ||
		warm.X.Rows != u.Rows || warm.X.Cols != g ||
		warm.T.Rows != lv.Cols || warm.T.Cols != g ||
		warm.L.Rows != nLabels || warm.L.Cols != g || warm.Epochs < 0 {
		return nil, fmt.Errorf("vesta: decoded plan factors do not match knowledge (%d sources, %d labels, %d vms, latent dim %d)",
			u.Rows, nLabels, lv.Cols, g)
	}
	pr, err := cmf.Prepare(cmf.Problem{
		U: u, V: lv.T(), UStar: mat.New(1, nLabels), Mask: mat.New(1, nLabels),
	})
	if err != nil {
		return nil, fmt.Errorf("vesta: preparing plan problem: %w", err)
	}
	return &predictPlan{u: u, lv: lv, pr: pr, warm: warm}, nil
}

// planHolder shares one lazily-built plan across every snapshot of an
// Absorb lineage. The zero holder builds on first use; a holder seeded by
// DecodeSnapshot starts done.
type planHolder struct {
	mu   sync.Mutex
	done bool
	plan *predictPlan
	err  error
}

// get returns the lineage's plan, building it from sys on first call.
// Because the plan is a pure function of (knowledge, config) and both are
// frozen at publish time, it does not matter which snapshot of the lineage
// triggers the build.
func (h *planHolder) get(sys *System) (*predictPlan, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.done {
		h.plan, h.err = sys.buildPlan()
		h.done = true
	}
	return h.plan, h.err
}

// peek returns the plan only if it has already been built successfully.
func (h *planHolder) peek() *predictPlan {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done && h.err == nil {
		return h.plan
	}
	return nil
}
