// Snapshot extraction: the serving layer (internal/serve) publishes trained
// state to many concurrent readers through an atomic pointer, so the state
// it publishes must be immutable. A Snapshot is a self-contained deep copy
// of a trained System — predictions against it are read-only, and updates
// (absorbing a completed target) produce a *new* Snapshot copy-on-write
// instead of mutating the published one.
package core

import (
	"fmt"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/workload"
)

// Snapshot is an immutable copy of a trained system, stamped with an epoch.
// Epoch 0 is the snapshot taken from the trained (or loaded) system; every
// Absorb increments it. All methods are safe for concurrent use: Predict
// never writes, and Absorb writes only to a fresh deep copy.
type Snapshot struct {
	sys   *System
	epoch uint64
	// plan is the lineage-shared predict plan (see plan.go): every snapshot
	// descended from the same epoch-0 snapshot points at the same holder,
	// because Absorb never changes the source matrices the plan is built
	// from.
	plan *planHolder
}

// Snapshot captures the system's trained state as an immutable snapshot at
// epoch 0. Later mutations of the system (AbsorbTarget, retraining) do not
// reach the snapshot, and vice versa.
func (s *System) Snapshot() (*Snapshot, error) {
	if s.knowledge == nil {
		return nil, fmt.Errorf("vesta: Snapshot before TrainOffline")
	}
	return &Snapshot{sys: s.cloneForSnapshot(), epoch: 0, plan: &planHolder{}}, nil
}

// cloneForSnapshot deep-copies the parts of the system that any mutation
// path writes to. The PCA result, measurement tables, and source rows are
// write-once after training, so the clones share them; the graph and the
// K-Means model are rewritten by AbsorbTarget and must be owned.
func (s *System) cloneForSnapshot() *System {
	k := s.knowledge
	byName := make(map[string]cloud.VMType, len(s.byName))
	for n, v := range s.byName {
		byName[n] = v
	}
	kc := *k
	kc.Graph = k.Graph.Clone()
	kc.KM = k.KM.Clone()
	return &System{
		cfg:        s.cfg,
		catalog:    append([]cloud.VMType(nil), s.catalog...),
		byName:     byName,
		catVersion: s.catVersion,
		trained:    s.trained, // write-once at New; shared across the lineage
		knowledge:  &kc,
	}
}

// Epoch returns the snapshot's publication epoch.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Workloads returns the number of workload nodes in the snapshot's knowledge
// graph. Together with the epoch and catalog version it forms the
// consistency token the serving layer stamps into every response: every
// epoch increment is either an Absorb (workloads +1) or an AbsorbCatalog
// (catalog version +1), so a lineage over a base of b sources always
// reports exactly b + (epoch-baseEpoch) - (catVersion-baseCatVersion)
// workloads, and a torn or half-published snapshot is detectable from any
// single response.
func (sn *Snapshot) Workloads() int {
	return len(sn.sys.knowledge.Graph.Workloads())
}

// HasWorkload reports whether name is already a workload node in the
// snapshot's knowledge graph — the duplicate check Absorb enforces, exposed
// so callers can reject early with a typed error.
func (sn *Snapshot) HasWorkload(name string) bool {
	return sn.sys.knowledge.Graph.HasWorkload(name)
}

// Config returns the effective configuration frozen into the snapshot.
func (sn *Snapshot) Config() Config { return sn.sys.cfg }

// Catalog returns a copy of the VM catalog frozen into the snapshot.
func (sn *Snapshot) Catalog() []cloud.VMType {
	return append([]cloud.VMType(nil), sn.sys.catalog...)
}

// CatalogVersion returns the catalog version the snapshot ranks against:
// 0 for the construction-time catalog, incremented by every AbsorbCatalog.
// Together with the epoch it extends the consistency token — a catalog
// update advances the epoch without growing the workload set, so workloads
// = base + (epoch - baseEpoch) - (catalogVersion - baseCatalogVersion)
// along any lineage.
func (sn *Snapshot) CatalogVersion() uint64 { return sn.sys.catVersion }

// VM returns the named type from the snapshot's current catalog version.
// Serving layers use this (not a construction-time index) so prices follow
// repricing updates.
func (sn *Snapshot) VM(name string) (cloud.VMType, bool) {
	v, ok := sn.sys.byName[name]
	return v, ok
}

// Predict runs the online predicting phase against the frozen knowledge.
// It is read-only with respect to the snapshot: any number of Predict calls
// may run concurrently with each other and with Absorb on the same snapshot.
// For a fixed (snapshot, target, meter stream) the prediction is
// bit-identical regardless of concurrency.
func (sn *Snapshot) Predict(target workload.App, meter oracle.Service) (*Prediction, error) {
	return sn.sys.PredictOnline(target, meter)
}

// PredictFast is Predict through the lineage's precomputed plan: the CMF
// source matrices, their observed-cell indexes, and the converged source
// factors are reused, so the request-scoped solve warm-starts and typically
// stabilizes in ~Patience epochs instead of hundreds. The result is a pure
// function of (snapshot, target, meter stream) exactly like Predict — the
// same bytes at any concurrency, whether the plan was built eagerly, lazily,
// or decoded from a checkpoint — but the SGD trajectory differs from the
// cold solve, so PredictFast and Predict may rank borderline VMs
// differently. approx opts into the FreezeSource approximate mode: the
// source factors stay frozen and only the target row is fitted, an order of
// magnitude cheaper again with a documented accuracy tradeoff (see the
// accuracy benches in internal/bench).
//
// The first PredictFast of a lineage builds the plan (one cold solve);
// concurrent callers block on that build and then share it.
func (sn *Snapshot) PredictFast(target workload.App, meter oracle.Service, approx bool) (*Prediction, error) {
	plan, err := sn.plan.get(sn.sys)
	if err != nil {
		return nil, err
	}
	return sn.sys.predictWith(target, meter, plan, approx)
}

// PreparePlan forces the lineage's plan to exist (the same build PredictFast
// triggers lazily), so a server can pay the one-time cold solve at publish
// time instead of on the first request. Safe to call repeatedly.
func (sn *Snapshot) PreparePlan() error {
	_, err := sn.plan.get(sn.sys)
	return err
}

// PlanReady reports whether the lineage's precomputed plan is already built —
// eagerly via PreparePlan, lazily by a PredictFast, or restored from an
// encoded checkpoint. A recovered checkpoint that carried the plan field
// reports true without ever paying the plan solve.
func (sn *Snapshot) PlanReady() bool { return sn.plan.peek() != nil }

// Absorb returns a new snapshot, one epoch later, with the completed target
// recorded in the knowledge graph (AbsorbTarget semantics). The receiver is
// untouched — in-flight predictions against it keep their consistent view —
// and the caller publishes the returned snapshot when ready.
//
// Unlike System.AbsorbTarget, Absorb rejects a name already present in the
// graph: an upsert would advance the epoch without growing the workload set,
// silently breaking the b+e consistency token documented on Workloads.
func (sn *Snapshot) Absorb(name string, labelWeights, prunedVec []float64) (*Snapshot, error) {
	if sn.sys.knowledge.Graph.HasWorkload(name) {
		return nil, fmt.Errorf("vesta: absorb: workload %q already in the knowledge graph", name)
	}
	clone := sn.sys.cloneForSnapshot()
	if err := clone.AbsorbTarget(name, labelWeights, prunedVec); err != nil {
		return nil, err
	}
	// The plan holder is shared, not copied: AbsorbTarget only adds a
	// workload node and refits K-Means, so the source matrices the plan is
	// built from are unchanged and any plan already built stays valid.
	return &Snapshot{sys: clone, epoch: sn.epoch + 1, plan: sn.plan}, nil
}

// AbsorbCatalog returns a new snapshot, one epoch and one catalog version
// later, selecting against the updated catalog. The learned knowledge is
// untouched — the graph's VM vocabulary stays at its training set and
// rankings are projected onto the new catalog per adaptRanking — so, like
// Absorb, the receiver keeps serving its consistent view while the caller
// publishes the successor. The update is validated against the catalog
// invariants (cloud.Versioned.Apply); retiring the sandbox VM is refused
// because every online prediction starts with a sandbox run.
func (sn *Snapshot) AbsorbCatalog(up cloud.Update) (*Snapshot, error) {
	cur, err := cloud.VersionedAt(sn.sys.catalog, sn.sys.catVersion)
	if err != nil {
		return nil, fmt.Errorf("vesta: current catalog invalid: %w", err)
	}
	next, err := cur.Apply(up)
	if err != nil {
		return nil, fmt.Errorf("vesta: absorb catalog: %w", err)
	}
	if _, ok := next.Find(sn.sys.cfg.SandboxVM); !ok {
		return nil, fmt.Errorf("vesta: absorb catalog: update retires sandbox VM %q", sn.sys.cfg.SandboxVM)
	}
	clone := sn.sys.cloneForSnapshot()
	clone.catalog = next.Types()
	clone.byName = cloud.ByName(clone.catalog)
	clone.catVersion = next.Version()
	// The plan holder is shared for the same reason Absorb shares it: the
	// CMF source matrices the plan is built from never reference the
	// catalog, only the knowledge graph's trained vocabulary.
	return &Snapshot{sys: clone, epoch: sn.epoch + 1, plan: sn.plan}, nil
}
