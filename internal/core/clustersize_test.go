package core

import (
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func TestRecommendClusterSizeValidation(t *testing.T) {
	sys, meter := trainedSystem(t)
	tgt := mustApp(t, "Spark-lr")
	if _, err := sys.RecommendClusterSize(tgt, "m5.xlarge", nil, meter); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if _, err := sys.RecommendClusterSize(tgt, "bogus.vm", []int{2, 4}, meter); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if _, err := sys.RecommendClusterSize(tgt, "m5.xlarge", []int{0, 4}, meter); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestRecommendClusterSizeBasics(t *testing.T) {
	sys, meter := trainedSystem(t)
	meter.Reset()
	tgt := mustApp(t, "Spark-lr")
	sizes := []int{2, 4, 8, 16}
	rec, err := sys.RecommendClusterSize(tgt, "m5.xlarge", sizes, meter)
	if err != nil {
		t.Fatal(err)
	}
	if rec.BestByTime < 2 || rec.BestByCost < 2 {
		t.Fatalf("no recommendation: %+v", rec)
	}
	if len(rec.Options) != len(sizes) {
		t.Fatalf("%d options, want %d", len(rec.Options), len(sizes))
	}
	// Options ascend by node count, measured ones carry data.
	measured := 0
	for i, opt := range rec.Options {
		if opt.Nodes != sizes[i] {
			t.Fatalf("option order wrong: %+v", rec.Options)
		}
		if opt.Measured {
			measured++
			if opt.P90Seconds <= 0 || opt.CostUSD <= 0 {
				t.Fatalf("measured option without data: %+v", opt)
			}
		}
	}
	if measured == 0 {
		t.Fatal("nothing measured")
	}
	// Accounting: sandbox + one run per measured size.
	if rec.Runs != measured+1 {
		t.Fatalf("Runs = %d, measured = %d", rec.Runs, measured)
	}
	if meter.Runs() != rec.Runs {
		t.Fatal("meter disagrees with recommendation accounting")
	}
	// The recommended size must be the best among the measured options.
	for _, opt := range rec.Options {
		if opt.Measured && opt.Nodes != rec.BestByTime {
			best := optByNodes(rec.Options, rec.BestByTime)
			if opt.P90Seconds < best.P90Seconds {
				t.Fatalf("size %d (%v s) beats recommended %d (%v s)",
					opt.Nodes, opt.P90Seconds, rec.BestByTime, best.P90Seconds)
			}
		}
	}
}

func optByNodes(opts []SizeOption, n int) SizeOption {
	for _, o := range opts {
		if o.Nodes == n {
			return o
		}
	}
	return SizeOption{}
}

func TestRecommendUsesCorrelationDirection(t *testing.T) {
	sys, meter := trainedSystem(t)
	// A wide shuffle-heavy workload with tasks >> iterations is fat-leaning
	// (negative iteration-to-parallelism) -> scanned large-first.
	sort := mustApp(t, "Spark-sort")
	rec, err := sys.RecommendClusterSize(sort, "c5n.4xlarge", []int{2, 4, 8, 16}, meter)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Thin {
		t.Fatal("Spark-sort reported thin-leaning; its parallelism dwarfs its iterations")
	}
	// Fat-first scan must have measured the largest candidate.
	if !optByNodes(rec.Options, 16).Measured {
		t.Fatal("fat-leaning scan skipped the largest size")
	}
}

func TestRecommendFindsSweetSpot(t *testing.T) {
	// For a small input, huge clusters pay coordination without speedup:
	// the recommended size must not be the largest candidate.
	sys, meter := trainedSystem(t)
	tiny := mustApp(t, "Spark-pca").WithInput(2)
	rec, err := sys.RecommendClusterSize(tiny, "m5.2xlarge", []int{2, 4, 8, 16, 32}, meter)
	if err != nil {
		t.Fatal(err)
	}
	if rec.BestByTime == 32 {
		t.Fatalf("2 GB input recommended a 32-node cluster: %+v", rec.Options)
	}
}

func TestProfileWithCharges(t *testing.T) {
	s := sim.New(sim.Config{Repeats: 2})
	m := oracle.NewMeter(s, 3)
	other := sim.New(sim.Config{Repeats: 2, Nodes: 8})
	a, _ := workload.ByName("Spark-lr")
	p := m.ProfileWith(other, a, catalog[30])
	if p.Nodes != 8 {
		t.Fatalf("ProfileWith ignored the alternative config: nodes = %d", p.Nodes)
	}
	if m.Runs() != 1 {
		t.Fatalf("ProfileWith did not charge the meter: %d", m.Runs())
	}
}
