package core

import (
	"fmt"
	"testing"

	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// BenchmarkTrainOffline measures the offline phase (per-source profiling
// fan-out plus parallel K-Means restarts) at several worker counts. The
// trained knowledge is byte-identical at every count.
func BenchmarkTrainOffline(b *testing.B) {
	sources := workload.BySet(workload.SourceTraining)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := New(Config{Seed: 1, Workers: workers}, catalog)
				if err != nil {
					b.Fatal(err)
				}
				meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
				if err := sys.TrainOffline(sources, meter); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracing measures the observability tax on the full train +
// predict pipeline: "off" runs with a nil tracer (the default — every
// instrumentation site reduces to a nil check), "on" records the complete
// span/counter/gauge stream. The acceptance bar is off ≤ 1.05x the
// pre-instrumentation baseline (results/obs.md).
func BenchmarkTracing(b *testing.B) {
	sources := workload.BySet(workload.SourceTraining)
	targets := workload.TargetSet()
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var tracer *obs.Tracer
				if mode == "on" {
					tracer = obs.New()
				}
				sys, err := New(Config{Seed: 1, Workers: 4, Tracer: tracer}, catalog)
				if err != nil {
					b.Fatal(err)
				}
				cfg := sim.DefaultConfig()
				cfg.Tracer = tracer
				meter := oracle.NewMeter(sim.New(cfg), 1).SetTracer(tracer)
				if err := sys.TrainOffline(sources, meter); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.PredictBatch(targets, func(j int) oracle.Service {
					m := oracle.NewMeter(sim.New(cfg), 0xE0+uint64(j))
					return m.SetTracer(tracer)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch measures the online phase over the 12 Spark targets
// (one CMF solve per target) at several worker counts.
func BenchmarkPredictBatch(b *testing.B) {
	sys, err := New(Config{Seed: 1}, catalog)
	if err != nil {
		b.Fatal(err)
	}
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		b.Fatal(err)
	}
	targets := workload.TargetSet()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sys.cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := sys.PredictBatch(targets, func(j int) oracle.Service {
					return oracle.NewMeter(sim.New(sim.DefaultConfig()), 0xE0+uint64(j))
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
