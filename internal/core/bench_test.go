package core

import (
	"fmt"
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// BenchmarkTrainOffline measures the offline phase (per-source profiling
// fan-out plus parallel K-Means restarts) at several worker counts. The
// trained knowledge is byte-identical at every count.
func BenchmarkTrainOffline(b *testing.B) {
	sources := workload.BySet(workload.SourceTraining)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := New(Config{Seed: 1, Workers: workers}, catalog)
				if err != nil {
					b.Fatal(err)
				}
				meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
				if err := sys.TrainOffline(sources, meter); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch measures the online phase over the 12 Spark targets
// (one CMF solve per target) at several worker counts.
func BenchmarkPredictBatch(b *testing.B) {
	sys, err := New(Config{Seed: 1}, catalog)
	if err != nil {
		b.Fatal(err)
	}
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		b.Fatal(err)
	}
	targets := workload.TargetSet()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sys.cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := sys.PredictBatch(targets, func(j int) oracle.Service {
					return oracle.NewMeter(sim.New(sim.DefaultConfig()), 0xE0+uint64(j))
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
