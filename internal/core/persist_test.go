package core

import (
	"bytes"
	"strings"
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	sys, meter := trainedSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveKnowledge(&buf); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(Config{Seed: 1}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadKnowledge(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The restored system must predict identically.
	tgt := mustApp(t, "Spark-lr")
	p1, err := sys.PredictOnline(tgt, meter)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := fresh.PredictOnline(tgt, oracle.NewMeter(meter.Sim, meter.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Best.Name != p2.Best.Name {
		t.Fatalf("restored system picked %s, original picked %s", p2.Best.Name, p1.Best.Name)
	}
	if p1.Converged != p2.Converged {
		t.Fatal("restored system convergence flag differs")
	}
	k := fresh.Knowledge()
	if len(k.SourceNames) != 13 || len(k.Labels) != 9 {
		t.Fatalf("restored knowledge shape wrong: %d sources, %d labels", len(k.SourceNames), len(k.Labels))
	}
}

func TestSaveBeforeTrain(t *testing.T) {
	sys, _ := New(Config{}, catalog)
	if err := sys.SaveKnowledge(&bytes.Buffer{}); err == nil {
		t.Fatal("SaveKnowledge before training accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	sys, _ := New(Config{}, catalog)
	cases := map[string]string{
		"malformed":         `{not json`,
		"empty":             `{}`,
		"inconsistent":      `{"labels":["l"],"kmeans_centroids":[[0.1]],"graph":{"labels":["l"],"vms":["m5.large"],"workloads":["w"],"is_source":[true],"workload_label":[[1]],"label_vm":[[0.5]]},"source_names":["a","b"],"source_vectors":[[1]],"source_memberships":[[1]]}`,
		"centroid-mismatch": `{"labels":["l1","l2"],"kmeans_centroids":[[0.1]],"graph":{"labels":["l1","l2"],"vms":["m5.large"],"workloads":[],"is_source":[],"workload_label":[],"label_vm":[[0],[0]]},"source_names":[],"source_vectors":[],"source_memberships":[]}`,
	}
	for name, payload := range cases {
		if err := sys.LoadKnowledge(strings.NewReader(payload)); err == nil {
			t.Fatalf("case %q: corrupt knowledge accepted", name)
		}
	}
}

func TestLoadRejectsForeignVM(t *testing.T) {
	// Knowledge referencing a VM outside the system's catalog must fail.
	s := sim.New(sim.Config{Repeats: 2})
	meter := oracle.NewMeter(s, 1)
	small := catalog[:40] // excludes large types
	sys, err := New(Config{K: 3}, small)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining)[:6], meter); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveKnowledge(&buf); err != nil {
		t.Fatal(err)
	}
	tiny, err := New(Config{SandboxVM: catalog[0].Name}, catalog[:10])
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.LoadKnowledge(&buf); err == nil {
		t.Fatal("knowledge with foreign VMs accepted")
	}
}

func TestLoadUpdatesK(t *testing.T) {
	sys, _ := trainedSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveKnowledge(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := New(Config{K: 5, Seed: 1}, catalog)
	if err := other.LoadKnowledge(&buf); err != nil {
		t.Fatal(err)
	}
	if other.Config().K != 9 {
		t.Fatalf("loaded K = %d, want 9", other.Config().K)
	}
}
