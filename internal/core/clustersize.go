// Cluster-size recommendation: Table 1's iteration-to-parallelism
// correlation "can infer to the choice of the number of VMs" — a positive
// correlation means the workload prefers a thin cluster (more iterations),
// a negative one a fat cluster (more parallelism). This file implements that
// inference: a correlation-guided scan order over candidate cluster sizes,
// measured through the meter like every other decision.
package core

import (
	"fmt"
	"math"
	"sort"

	"vesta/internal/metrics"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// SizeOption is one evaluated cluster size.
type SizeOption struct {
	Nodes      int
	P90Seconds float64
	CostUSD    float64
	Measured   bool // false when pruned by the correlation-guided early stop
}

// SizeRecommendation is the outcome of RecommendClusterSize.
type SizeRecommendation struct {
	Target string
	VM     string
	// BestByTime and BestByCost are the recommended node counts.
	BestByTime int
	BestByCost int
	// Options lists every candidate size in ascending node order.
	Options []SizeOption
	// Thin reports the iteration-to-parallelism reading: true when the
	// workload prefers a thin cluster.
	Thin bool
	// Runs is the number of reference runs spent.
	Runs int
}

// RecommendClusterSize scans candidate cluster sizes for the target on the
// given VM type. The iteration-to-parallelism correlation from the sandbox
// run decides the scan direction (thin-first or fat-first), and scanning
// stops early once execution time degrades twice in a row — so strongly
// thin- or fat-leaning workloads pay fewer measurement runs.
func (s *System) RecommendClusterSize(target workload.App, vmName string, sizes []int, meter *oracle.Meter) (*SizeRecommendation, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("vesta: no candidate cluster sizes")
	}
	vm, ok := s.byName[vmName]
	if !ok {
		return nil, fmt.Errorf("vesta: VM type %q not in catalog", vmName)
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	for _, n := range sorted {
		if n < 1 {
			return nil, fmt.Errorf("vesta: invalid cluster size %d", n)
		}
	}

	startRuns := meter.Runs()

	// Read the iteration-to-parallelism correlation from a sandbox run at
	// the default cluster size.
	sp := meter.Profile(target, s.byName[s.cfg.SandboxVM])
	thin := sp.Corr[metrics.IterationToParallelism] > 0

	// Thin-leaning workloads are scanned small-to-large (their optimum sits
	// low); fat-leaning ones large-to-small.
	order := append([]int(nil), sorted...)
	if !thin {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}

	results := map[int]sim.Profile{}
	degraded := 0
	var bestSec float64 = math.Inf(1)
	for _, n := range order {
		cfg := meter.Sim.Config()
		cfg.Nodes = n
		sized := sim.New(cfg)
		// Account the run on the shared meter by charging a profile against
		// a derived meter that shares the counter.
		p := meter.ProfileWith(sized, target, vm)
		results[n] = p
		if p.P90Seconds < bestSec {
			bestSec = p.P90Seconds
			degraded = 0
		} else {
			degraded++
			if degraded >= 2 {
				break // two consecutive degradations: past the optimum
			}
		}
	}

	rec := &SizeRecommendation{Target: target.Name, VM: vmName, Thin: thin}
	bestTime, bestCost := -1, -1
	var bestTimeV, bestCostV float64
	for _, n := range sorted {
		opt := SizeOption{Nodes: n}
		if p, ok := results[n]; ok {
			opt.Measured = true
			opt.P90Seconds = p.P90Seconds
			opt.CostUSD = p.CostUSD
			if bestTime == -1 || p.P90Seconds < bestTimeV {
				bestTime, bestTimeV = n, p.P90Seconds
			}
			if bestCost == -1 || p.CostUSD < bestCostV {
				bestCost, bestCostV = n, p.CostUSD
			}
		}
		rec.Options = append(rec.Options, opt)
	}
	rec.BestByTime = bestTime
	rec.BestByCost = bestCost
	rec.Runs = meter.Runs() - startRuns
	return rec, nil
}
