package core

import (
	"math"
	"testing"

	"vesta/internal/bipartite"
)

// calibrate depends only on its arguments, so the tests drive it on a bare
// System with synthetic rankings instead of paying for a trained model.

func scoreRanking(scores map[string]float64) []bipartite.VMScore {
	out := make([]bipartite.VMScore, 0, len(scores))
	for vm, sc := range scores {
		out = append(out, bipartite.VMScore{VM: vm, Score: sc})
	}
	return out
}

func TestCalibrateRecoversPowerLaw(t *testing.T) {
	// Observations drawn exactly from t = a * score^(-b) with a slope inside
	// the clamp range must be extrapolated with the same law.
	const a, b = 120.0, 1.7
	scores := map[string]float64{
		"vm-a": 0.95, "vm-b": 0.7, "vm-c": 0.45, "vm-d": 0.25, "vm-e": 0.6,
	}
	observed := map[string]float64{}
	for _, vm := range []string{"vm-a", "vm-b", "vm-c", "vm-d"} {
		observed[vm] = a * math.Pow(scores[vm], -b)
	}
	pred := (&System{}).calibrate(scoreRanking(scores), observed)
	want := a * math.Pow(scores["vm-e"], -b)
	if math.Abs(pred["vm-e"]-want)/want > 1e-9 {
		t.Fatalf("unobserved vm-e predicted %v, want %v (a=%v b=%v)", pred["vm-e"], want, a, b)
	}
}

func TestCalibrateClampsSlope(t *testing.T) {
	// A data-implied slope outside [0.5, 3] is clamped, keeping predictions
	// physically sensible on noisy observations.
	scores := map[string]float64{"vm-a": 0.9, "vm-b": 0.3, "vm-c": 0.6}
	observed := map[string]float64{
		// Implied b = 10: time ratio (0.9/0.3)^10 across the two observations.
		"vm-a": 100,
		"vm-b": 100 * math.Pow(0.9/0.3, 10),
	}
	pred := (&System{}).calibrate(scoreRanking(scores), observed)
	// With b clamped to 3, a = exp(mean(ly) + 3*mean(lx)).
	lx := []float64{math.Log(0.9), math.Log(0.3)}
	ly := []float64{math.Log(observed["vm-a"]), math.Log(observed["vm-b"])}
	aClamped := math.Exp((ly[0]+ly[1])/2 + 3*(lx[0]+lx[1])/2)
	want := aClamped * math.Pow(0.6, -3)
	if math.Abs(pred["vm-c"]-want)/want > 1e-9 {
		t.Fatalf("clamped prediction %v, want %v", pred["vm-c"], want)
	}
}

func TestCalibrateSingleObservationFallback(t *testing.T) {
	// One usable observation cannot identify a slope: b = 1, a = t0 * s0.
	scores := map[string]float64{"vm-a": 0.8, "vm-b": 0.4}
	observed := map[string]float64{"vm-a": 50}
	pred := (&System{}).calibrate(scoreRanking(scores), observed)
	want := 50 * 0.8 / 0.4 // a / score = t0*s0/s
	if math.Abs(pred["vm-b"]-want)/want > 1e-9 {
		t.Fatalf("single-observation prediction %v, want %v", pred["vm-b"], want)
	}
}

func TestCalibrateDegenerateScoresFallBackToB1(t *testing.T) {
	// Two observations at the same score have zero spread in log-score: the
	// slope is unidentifiable and the b = 1 fallback anchors on the first
	// (sorted-VM-order) observation.
	scores := map[string]float64{"vm-a": 0.5, "vm-b": 0.5, "vm-c": 0.25}
	observed := map[string]float64{"vm-a": 40, "vm-b": 44}
	pred := (&System{}).calibrate(scoreRanking(scores), observed)
	want := 40 * 0.5 / 0.25
	if math.Abs(pred["vm-c"]-want)/want > 1e-9 {
		t.Fatalf("degenerate-score prediction %v, want %v", pred["vm-c"], want)
	}
}

func TestCalibrateZeroScoreIsInf(t *testing.T) {
	// A VM the graph walk gives (near-)zero affinity has no finite prediction.
	scores := map[string]float64{"vm-a": 0.8, "vm-b": 0.4, "vm-zero": 0}
	observed := map[string]float64{"vm-a": 30, "vm-b": 70}
	pred := (&System{}).calibrate(scoreRanking(scores), observed)
	if !math.IsInf(pred["vm-zero"], 1) {
		t.Fatalf("zero-score VM predicted %v, want +Inf", pred["vm-zero"])
	}
}

func TestCalibrateObservedPassthrough(t *testing.T) {
	// Observed VMs must report their measured time exactly, even when the
	// fitted law disagrees (measurements are ground truth, fits are not).
	scores := map[string]float64{"vm-a": 0.9, "vm-b": 0.5, "vm-c": 0.2}
	observed := map[string]float64{"vm-a": 10, "vm-b": 400, "vm-c": 55}
	pred := (&System{}).calibrate(scoreRanking(scores), observed)
	for vm, sec := range observed {
		if pred[vm] != sec {
			t.Fatalf("observed %s predicted %v, want exact passthrough %v", vm, pred[vm], sec)
		}
	}
}

func TestCalibrateNoObservations(t *testing.T) {
	// With nothing observed the identity law (a = b = 1) still yields a
	// finite, monotone prediction per positive score.
	scores := map[string]float64{"vm-a": 0.5, "vm-b": 0.25}
	pred := (&System{}).calibrate(scoreRanking(scores), map[string]float64{})
	if pred["vm-a"] != 2 || pred["vm-b"] != 4 {
		t.Fatalf("identity-law predictions %v, want 1/score", pred)
	}
}
