package core

import (
	"reflect"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
)

func TestSnapshotBeforeTraining(t *testing.T) {
	sys, err := New(Config{Seed: 1}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Fatal("snapshot of untrained system accepted")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	base := snap.Workloads()
	if snap.Epoch() != 0 {
		t.Fatalf("fresh snapshot epoch = %d", snap.Epoch())
	}

	// Predictions through the snapshot match the system bit-for-bit when fed
	// the same measurement stream.
	app := mustApp(t, "Spark-kmeans")
	fromSys, err := sys.PredictOnline(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 7))
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := snap.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSys, fromSnap) {
		t.Fatal("snapshot prediction diverges from system prediction")
	}

	// Mutating the system does not reach the snapshot.
	if err := sys.AbsorbTarget("sys-side", fromSys.LabelWeights, fromSys.PrunedVec); err != nil {
		t.Fatal(err)
	}
	if snap.Workloads() != base {
		t.Fatal("system mutation leaked into snapshot")
	}

	// Absorbing into the snapshot chain does not reach the system or the
	// parent snapshot.
	next, err := snap.Absorb("snap-side", fromSys.LabelWeights, fromSys.PrunedVec)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 1 || next.Workloads() != base+1 {
		t.Fatalf("next = (epoch %d, workloads %d), want (1, %d)", next.Epoch(), next.Workloads(), base+1)
	}
	if snap.Workloads() != base {
		t.Fatal("Absorb mutated its receiver")
	}
	for _, w := range sys.knowledge.Graph.Workloads() {
		if w == "snap-side" {
			t.Fatal("snapshot absorb leaked into system")
		}
	}

	// The chained snapshot keeps predicting, and the b+e token holds along
	// the chain.
	third, err := next.Absorb("snap-side-2", fromSys.LabelWeights, fromSys.PrunedVec)
	if err != nil {
		t.Fatal(err)
	}
	if third.Epoch() != 2 || third.Workloads() != base+2 {
		t.Fatalf("third = (epoch %d, workloads %d)", third.Epoch(), third.Workloads())
	}
	if _, err := third.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 7)); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAbsorbValidation(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := snap.Predict(mustApp(t, "Spark-grep"), oracle.NewMeter(sim.New(sim.DefaultConfig()), 3))
	if err != nil {
		t.Fatal(err)
	}
	// Absorbing a name that already exists must fail (the epoch token would
	// otherwise drift from the workload count).
	if _, err := snap.Absorb(snap.sys.knowledge.Graph.Workloads()[0], pred.LabelWeights, pred.PrunedVec); err == nil {
		t.Fatal("absorb of existing workload accepted")
	}
	// Mis-shaped payloads are rejected without publishing anything.
	if _, err := snap.Absorb("bad-weights", pred.LabelWeights[:1], pred.PrunedVec); err == nil {
		t.Fatal("short label weights accepted")
	}
	if _, err := snap.Absorb("bad-vec", pred.LabelWeights, pred.PrunedVec[:1]); err == nil {
		t.Fatal("short pruned vector accepted")
	}
	if snap.Workloads() != len(snap.sys.knowledge.Graph.Workloads()) {
		t.Fatal("failed absorb mutated the receiver")
	}
}

func TestSnapshotCatalogIsACopy(t *testing.T) {
	sys, _ := trainedSystem(t)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cat := snap.Catalog()
	if len(cat) != len(cloud.Catalog120()) {
		t.Fatalf("catalog length = %d", len(cat))
	}
	cat[0].Name = "mutated"
	if snap.Catalog()[0].Name == "mutated" {
		t.Fatal("Catalog returned shared backing storage")
	}
	if snap.Config().Seed != sys.Config().Seed {
		t.Fatal("config not frozen into snapshot")
	}
}
