package core

import (
	"math"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

var catalog = cloud.Catalog120()

// trainedSystem trains Vesta on the 13 source-training workloads once and
// shares it across tests (training is deterministic given the seed).
func trainedSystem(t *testing.T) (*System, *oracle.Meter) {
	t.Helper()
	s := sim.New(sim.DefaultConfig())
	meter := oracle.NewMeter(s, 1)
	sys, err := New(Config{Seed: 1}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		t.Fatal(err)
	}
	return sys, meter
}

func mustApp(t *testing.T, name string) workload.App {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := New(Config{SandboxVM: "bogus.vm"}, catalog); err == nil {
		t.Fatal("unknown sandbox VM accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	sys, err := New(Config{}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.K != 9 {
		t.Fatalf("default K = %d, want 9 (Figure 11)", cfg.K)
	}
	if cfg.Lambda != 0.75 {
		t.Fatalf("default Lambda = %v, want 0.75 (Section 5.3)", cfg.Lambda)
	}
	if cfg.InitRandomVMs != 3 {
		t.Fatalf("default InitRandomVMs = %d, want 3 (Section 4.2)", cfg.InitRandomVMs)
	}
	if cfg.SandboxVM != "m5.xlarge" {
		t.Fatalf("default sandbox = %s", cfg.SandboxVM)
	}
}

func TestTrainOfflineValidation(t *testing.T) {
	s := sim.New(sim.Config{Repeats: 2})
	meter := oracle.NewMeter(s, 1)
	sys, _ := New(Config{}, catalog)
	if err := sys.TrainOffline(nil, meter); err == nil {
		t.Fatal("empty sources accepted")
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining)[:5], meter); err == nil {
		t.Fatal("k=9 with 5 sources accepted")
	}
}

func TestPredictBeforeTrain(t *testing.T) {
	sys, _ := New(Config{}, catalog)
	meter := oracle.NewMeter(sim.New(sim.Config{Repeats: 2}), 1)
	if _, err := sys.PredictOnline(mustApp(t, "Spark-lr"), meter); err == nil {
		t.Fatal("PredictOnline before TrainOffline accepted")
	}
}

func TestKnowledgeShape(t *testing.T) {
	sys, _ := trainedSystem(t)
	k := sys.Knowledge()
	if k == nil {
		t.Fatal("no knowledge after training")
	}
	if len(k.Labels) != 9 {
		t.Fatalf("%d labels, want 9", len(k.Labels))
	}
	if len(k.SourceNames) != 13 || len(k.SourceVecs) != 13 || len(k.SourceMemberships) != 13 {
		t.Fatal("source bookkeeping rows mismatched")
	}
	if len(k.Kept) == 0 || len(k.Kept) >= 10 {
		t.Fatalf("PCA kept %d of 10 features; expected a strict subset", len(k.Kept))
	}
	// Memberships are distributions.
	for i, m := range k.SourceMemberships {
		sum := 0.0
		for _, w := range m {
			if w < 0 {
				t.Fatalf("negative membership for %s", k.SourceNames[i])
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("memberships of %s sum to %v", k.SourceNames[i], sum)
		}
	}
	// Offline runs: 13 workloads x 120 VM types.
	if k.OfflineRuns != 13*120 {
		t.Fatalf("OfflineRuns = %d, want %d", k.OfflineRuns, 13*120)
	}
	// Graph carries every source as blue edges.
	st := k.Graph.Stats(1e-6)
	if st.Workloads != 13 || st.TargetEdges != 0 {
		t.Fatalf("graph stats = %+v", st)
	}
}

func TestPredictOnlineBasics(t *testing.T) {
	sys, meter := trainedSystem(t)
	meter.Reset()
	pred, err := sys.PredictOnline(mustApp(t, "Spark-lr"), meter)
	if err != nil {
		t.Fatal(err)
	}
	// Online overhead: 1 sandbox + 3 random VMs (Section 4.2).
	if pred.OnlineRuns != 4 {
		t.Fatalf("online runs = %d, want 4", pred.OnlineRuns)
	}
	if len(pred.ObservedSec) != 4 {
		t.Fatalf("observed %d VMs, want 4", len(pred.ObservedSec))
	}
	if len(pred.Ranking) != len(catalog) {
		t.Fatalf("ranking has %d VMs", len(pred.Ranking))
	}
	if pred.Ranking[0].VM != pred.Best.Name {
		t.Fatal("Best is not top of ranking")
	}
	if !pred.Converged {
		t.Fatal("Spark-lr should converge (its kernel is in the source set)")
	}
	// Predicted times exist for the whole catalog and are positive.
	for _, vm := range catalog {
		sec, err := pred.PredictTime(vm.Name)
		if err != nil {
			t.Fatal(err)
		}
		if sec <= 0 {
			t.Fatalf("predicted %v for %s", sec, vm.Name)
		}
	}
	if _, err := pred.PredictTime("bogus.vm"); err == nil {
		t.Fatal("unknown VM prediction accepted")
	}
	// Observed VMs predict exactly their measurement.
	for vm, sec := range pred.ObservedSec {
		if got, _ := pred.PredictTime(vm); got != sec {
			t.Fatalf("observed VM %s predicted %v, measured %v", vm, got, sec)
		}
	}
}

func TestPredictionDeterministic(t *testing.T) {
	sys, meter := trainedSystem(t)
	p1, err := sys.PredictOnline(mustApp(t, "Spark-kmeans"), meter)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sys.PredictOnline(mustApp(t, "Spark-kmeans"), meter)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Best.Name != p2.Best.Name || p1.Converged != p2.Converged {
		t.Fatal("prediction not deterministic")
	}
}

func TestOutliersFlaggedNonConverged(t *testing.T) {
	// Section 5.3: Spark-svd++ (high variance) and Spark-CF (cannot match
	// the offline knowledge) are the two exceptions.
	sys, meter := trainedSystem(t)
	for _, name := range []string{"Spark-CF", "Spark-svd++"} {
		pred, err := sys.PredictOnline(mustApp(t, name), meter)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Converged {
			t.Fatalf("%s converged (matchDist=%v); the paper reports it as an outlier",
				name, pred.MatchDistance)
		}
	}
	for _, name := range []string{"Spark-lr", "Spark-pca", "Spark-grep", "Spark-count"} {
		pred, err := sys.PredictOnline(mustApp(t, name), meter)
		if err != nil {
			t.Fatal(err)
		}
		if !pred.Converged {
			t.Fatalf("%s did not converge (matchDist=%v)", name, pred.MatchDistance)
		}
	}
}

func TestSelectionQualityOnTargets(t *testing.T) {
	// End-to-end: over the 12 Spark targets, Vesta's mean execution-time
	// regret must be modest, and the designed outliers must carry the top
	// regrets.
	sys, meter := trainedSystem(t)
	truth := oracle.Build(meter.Sim, workload.TargetSet(), catalog, 999)
	regrets := map[string]float64{}
	total := 0.0
	for _, tgt := range workload.TargetSet() {
		pred, err := sys.PredictOnline(tgt, meter)
		if err != nil {
			t.Fatal(err)
		}
		_, bestSec, err := truth.BestByTime(tgt.Name)
		if err != nil {
			t.Fatal(err)
		}
		pickedSec, err := truth.Time(tgt.Name, pred.Best.Name)
		if err != nil {
			t.Fatal(err)
		}
		reg := (pickedSec - bestSec) / bestSec
		regrets[tgt.Name] = reg
		total += reg
	}
	mean := total / 12
	if mean > 0.30 {
		t.Fatalf("mean regret %.1f%% too high", mean*100)
	}
	// Non-outlier targets should mostly be near-optimal.
	good := 0
	for name, reg := range regrets {
		if name == "Spark-svd++" || name == "Spark-CF" {
			continue
		}
		if reg < 0.30 {
			good++
		}
	}
	if good < 8 {
		t.Fatalf("only %d/10 regular targets within 30%% of optimal: %v", good, regrets)
	}
}

func TestCalibratedTimePredictionScale(t *testing.T) {
	// Vesta's predicted time for its chosen VM must be on the right scale
	// (the paper's MAPE metric, Equation 7): within 75% of the true best
	// time for a well-matched target (4 observations anchor the scale; the
	// paper's own per-workload MAPEs range into the tens of percent).
	sys, meter := trainedSystem(t)
	truth := oracle.Build(meter.Sim, workload.TargetSet(), catalog, 999)
	for _, name := range []string{"Spark-lr", "Spark-sort", "Spark-count"} {
		pred, err := sys.PredictOnline(mustApp(t, name), meter)
		if err != nil {
			t.Fatal(err)
		}
		_, bestSec, _ := truth.BestByTime(name)
		predSec, _ := pred.PredictTime(pred.Best.Name)
		ape := math.Abs(predSec-bestSec) / bestSec
		if ape > 0.75 {
			t.Fatalf("%s: predicted %v vs best %v (APE %.0f%%)", name, predSec, bestSec, ape*100)
		}
	}
}

func TestAbsorbTarget(t *testing.T) {
	sys, meter := trainedSystem(t)
	pred, err := sys.PredictOnline(mustApp(t, "Spark-lr"), meter)
	if err != nil {
		t.Fatal(err)
	}
	k := sys.Knowledge()
	vec := make([]float64, len(k.SourceVecs[0]))
	if err := sys.AbsorbTarget("Spark-lr", pred.LabelWeights, vec); err != nil {
		t.Fatal(err)
	}
	if src, err := k.Graph.IsSource("Spark-lr"); err != nil || src {
		t.Fatalf("absorbed target should be a red (target) edge: %v, %v", src, err)
	}
	if err := sys.AbsorbTarget("x", pred.LabelWeights, []float64{1}); err == nil {
		t.Fatal("wrong-dim pruned vector accepted")
	}
}

func TestAbsorbBeforeTrain(t *testing.T) {
	sys, _ := New(Config{}, catalog)
	if err := sys.AbsorbTarget("x", nil, nil); err == nil {
		t.Fatal("AbsorbTarget before training accepted")
	}
}

func TestOptimizeProtocol(t *testing.T) {
	sys, meter := trainedSystem(t)
	steps, pred, err := sys.Optimize(mustApp(t, "Spark-lr"), 12, meter)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 12 {
		t.Fatalf("got %d steps, want 12", len(steps))
	}
	if pred.OnlineRuns != 12 {
		t.Fatalf("OnlineRuns = %d, want 12", pred.OnlineRuns)
	}
	seen := map[string]bool{}
	for i, st := range steps {
		if st.Run != i+1 {
			t.Fatalf("step %d has Run %d", i, st.Run)
		}
		if seen[st.VM] {
			t.Fatalf("VM %s tried twice", st.VM)
		}
		seen[st.VM] = true
		if i > 0 && (st.BestSec > steps[i-1].BestSec || st.BestUSD > steps[i-1].BestUSD) {
			t.Fatal("best-so-far regressed")
		}
	}
	// The first step must be the sandbox VM.
	if steps[0].VM != sys.Config().SandboxVM {
		t.Fatalf("first step %s, want sandbox", steps[0].VM)
	}
}

func TestOptimizeFindsNearBest(t *testing.T) {
	sys, meter := trainedSystem(t)
	truth := oracle.Build(meter.Sim, workload.TargetSet(), catalog, 999)
	tgt := mustApp(t, "Spark-lr")
	steps, _, err := sys.Optimize(tgt, 15, meter)
	if err != nil {
		t.Fatal(err)
	}
	_, bestSec, _ := truth.BestByTime(tgt.Name)
	final := steps[len(steps)-1].BestSec
	if final > 1.4*bestSec {
		t.Fatalf("15-run optimization reached %v, true best %v", final, bestSec)
	}
}

func TestTrainingOverheadNumbers(t *testing.T) {
	// Figure 8: Vesta's online overhead is about 15 reference VMs (vs 100
	// for PARIS-from-scratch); the initialization alone is 4.
	sys, meter := trainedSystem(t)
	meter.Reset()
	steps, _, err := sys.Optimize(mustApp(t, "Spark-bayes"), 15, meter)
	if err != nil {
		t.Fatal(err)
	}
	if meter.Runs() != 15 || len(steps) != 15 {
		t.Fatalf("metered %d runs for a 15-run budget", meter.Runs())
	}
}

func TestSharpMembershipsConcentrate(t *testing.T) {
	sys, _ := trainedSystem(t)
	k := sys.Knowledge()
	// A source's own membership row should put the most weight on its own
	// cluster (sharp, not uniform).
	for i, vec := range k.SourceVecs {
		own := k.KM.Predict(vec)
		row := k.SourceMemberships[i]
		for c, w := range row {
			if c != own && w > row[own]+1e-9 {
				t.Fatalf("%s: membership of foreign cluster %d (%v) above own %d (%v)",
					k.SourceNames[i], c, w, own, row[own])
			}
		}
	}
}

func BenchmarkPredictOnline(b *testing.B) {
	s := sim.New(sim.DefaultConfig())
	meter := oracle.NewMeter(s, 1)
	sys, _ := New(Config{Seed: 1}, catalog)
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		b.Fatal(err)
	}
	a, _ := workload.ByName("Spark-lr")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.PredictOnline(a, meter); err != nil {
			b.Fatal(err)
		}
	}
}
