package core

import (
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// TestOutlierFlagStableAcrossSeeds verifies that the convergence limitation
// is a property of the workloads, not of a lucky seed: across five online
// measurement seeds, Spark-svd++ and Spark-CF must be flagged in the clear
// majority of trials, and the well-matched targets must essentially never
// be.
func TestOutlierFlagStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive multi-seed sweep")
	}
	s := sim.New(sim.DefaultConfig())
	sys, err := New(Config{Seed: 1}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), oracle.NewMeter(s, 1)); err != nil {
		t.Fatal(err)
	}

	flagCount := map[string]int{}
	const seeds = 5
	for seed := uint64(0); seed < seeds; seed++ {
		for _, tgt := range workload.TargetSet() {
			pred, err := sys.PredictOnline(tgt, oracle.NewMeter(s, 1000+seed*7919))
			if err != nil {
				t.Fatal(err)
			}
			if !pred.Converged {
				flagCount[tgt.Name]++
			}
		}
	}

	for _, outlier := range []string{"Spark-svd++", "Spark-CF"} {
		if flagCount[outlier] < seeds-1 {
			t.Errorf("%s flagged only %d/%d times; should be a stable outlier", outlier, flagCount[outlier], seeds)
		}
	}
	for _, stable := range []string{"Spark-lr", "Spark-pca", "Spark-kmeans", "Spark-sort", "Spark-grep", "Spark-count"} {
		if flagCount[stable] > 1 {
			t.Errorf("%s flagged %d/%d times; should be stably matched", stable, flagCount[stable], seeds)
		}
	}
}

// TestPickStableAcrossSeeds verifies the selected VM stays in the true
// top tier across online seeds for a well-matched target.
func TestPickStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive multi-seed sweep")
	}
	s := sim.New(sim.DefaultConfig())
	sys, err := New(Config{Seed: 1}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), oracle.NewMeter(s, 1)); err != nil {
		t.Fatal(err)
	}
	tgt := mustApp(t, "Spark-lr")
	truth := oracle.Build(s, []workload.App{tgt}, catalog, 999)
	_, bestSec, err := truth.BestByTime(tgt.Name)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for seed := uint64(0); seed < 5; seed++ {
		pred, err := sys.PredictOnline(tgt, oracle.NewMeter(s, 2000+seed*104729))
		if err != nil {
			t.Fatal(err)
		}
		sec, err := truth.Time(tgt.Name, pred.Best.Name)
		if err != nil {
			t.Fatal(err)
		}
		if sec > 1.35*bestSec {
			bad++
		}
	}
	if bad > 1 {
		t.Fatalf("pick fell outside 35%% of optimal in %d/5 seeds", bad)
	}
}
