package core

import (
	"bytes"
	"strings"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// codecFixture trains a system and absorbs one target so the encoded snapshot
// carries a non-zero epoch and an absorb-grown graph.
func codecFixture(t *testing.T) (*Snapshot, Config, []cloud.VMType) {
	t.Helper()
	cfg := Config{Seed: 1}
	catalog := cloud.Catalog120()
	sys, err := New(cfg, catalog)
	if err != nil {
		t.Fatal(err)
	}
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		t.Fatal(err)
	}
	base, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("Spark-kmeans")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := base.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 42))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := base.Absorb("codec-target", pred.LabelWeights, pred.PrunedVec)
	if err != nil {
		t.Fatal(err)
	}
	return snap, cfg, catalog
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	snap, cfg, catalog := codecFixture(t)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()), cfg, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch() != snap.Epoch() || dec.Workloads() != snap.Workloads() {
		t.Fatalf("decoded token (%d, %d), want (%d, %d)",
			dec.Epoch(), dec.Workloads(), snap.Epoch(), snap.Workloads())
	}
	if !dec.HasWorkload("codec-target") {
		t.Fatal("absorbed workload lost in round trip")
	}

	// Re-encoding the decoded snapshot reproduces the exact bytes: Encode is
	// a fixed point, which is what lets recovery tests use it as a state
	// fingerprint.
	var buf2 bytes.Buffer
	if err := dec.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("encode(decode(encode(x))) != encode(x)")
	}

	// Behavioral equality, not just structural: predictions against the
	// decoded snapshot match the original bit-for-bit.
	app, err := workload.ByName("Spark-grep")
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 7))
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Name != want.Best.Name || got.MatchDistance != want.MatchDistance {
		t.Fatalf("decoded prediction diverges: best %q vs %q", got.Best.Name, want.Best.Name)
	}
	for i, r := range want.Ranking {
		if got.Ranking[i] != r {
			t.Fatalf("ranking[%d] = %+v, want %+v", i, got.Ranking[i], r)
		}
	}

	// And further absorbs on the decoded snapshot behave like the original's:
	// the K-Means refit draws from the persisted source vectors and seed.
	pred2, err := snap.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 9))
	if err != nil {
		t.Fatal(err)
	}
	next1, err := snap.Absorb("second-target", pred2.LabelWeights, pred2.PrunedVec)
	if err != nil {
		t.Fatal(err)
	}
	next2, err := dec.Absorb("second-target", pred2.LabelWeights, pred2.PrunedVec)
	if err != nil {
		t.Fatal(err)
	}
	var e1, e2 bytes.Buffer
	if err := next1.Encode(&e1); err != nil {
		t.Fatal(err)
	}
	if err := next2.Encode(&e2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("absorb after decode diverges from absorb before encode")
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	_, cfg, catalog := codecFixture(t)
	if _, err := DecodeSnapshot(strings.NewReader("not json"), cfg, catalog); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeSnapshot(strings.NewReader(`{"epoch":1,"knowledge":{}}`), cfg, catalog); err == nil {
		t.Fatal("empty knowledge accepted")
	}
}
