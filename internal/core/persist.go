// Knowledge persistence: the offline phase is expensive (every source
// workload on every VM type), so its result — the abstracted knowledge — is
// serializable. The paper stores collector output in MySQL; we persist the
// distilled knowledge as JSON (DESIGN.md substitution).
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"vesta/internal/bipartite"
	"vesta/internal/kmeans"
)

// knowledgeJSON is the serialization schema for Knowledge. The PCA result is
// not persisted: prediction only needs the kept feature indices.
type knowledgeJSON struct {
	Labels            []string                      `json:"labels"`
	Kept              []int                         `json:"kept_features"`
	Centroids         [][]float64                   `json:"kmeans_centroids"`
	Graph             *bipartite.Graph              `json:"graph"`
	SourceNames       []string                      `json:"source_names"`
	SourceVecs        [][]float64                   `json:"source_vectors"`
	SourceMemberships [][]float64                   `json:"source_memberships"`
	Sigma             float64                       `json:"sigma"`
	BestTimes         map[string]float64            `json:"best_times"`
	Times             map[string]map[string]float64 `json:"times"`
	OfflineRuns       int                           `json:"offline_runs"`
}

// knowledgeToJSON projects the trained knowledge onto its serialization
// schema. Shared by SaveKnowledge and the snapshot codec.
func knowledgeToJSON(k *Knowledge) knowledgeJSON {
	return knowledgeJSON{
		Labels: k.Labels, Kept: k.Kept, Centroids: k.KM.Centroids,
		Graph: k.Graph, SourceNames: k.SourceNames, SourceVecs: k.SourceVecs,
		SourceMemberships: k.SourceMemberships, Sigma: k.Sigma,
		BestTimes: k.BestTimes, Times: k.Times, OfflineRuns: k.OfflineRuns,
	}
}

// setKnowledgeFromJSON validates a decoded schema against the system's
// catalog and installs it as the trained state. Shared by LoadKnowledge and
// the snapshot codec.
func (s *System) setKnowledgeFromJSON(kj knowledgeJSON) error {
	if len(kj.Labels) == 0 || len(kj.Centroids) == 0 || kj.Graph == nil {
		return fmt.Errorf("vesta: knowledge file is incomplete")
	}
	if len(kj.SourceNames) != len(kj.SourceVecs) || len(kj.SourceNames) != len(kj.SourceMemberships) {
		return fmt.Errorf("vesta: knowledge source rows are inconsistent")
	}
	for _, vm := range kj.Graph.VMs() {
		if _, ok := s.byName[vm]; !ok {
			return fmt.Errorf("vesta: knowledge references VM %q not in this catalog", vm)
		}
	}
	if len(kj.Centroids) != len(kj.Labels) {
		return fmt.Errorf("vesta: %d centroids for %d labels", len(kj.Centroids), len(kj.Labels))
	}
	km := &kmeans.Model{K: len(kj.Centroids), Centroids: kj.Centroids}
	s.knowledge = &Knowledge{
		Labels: kj.Labels, Kept: kj.Kept, KM: km, Graph: kj.Graph,
		SourceNames: kj.SourceNames, SourceVecs: kj.SourceVecs,
		SourceMemberships: kj.SourceMemberships, Sigma: kj.Sigma,
		BestTimes: kj.BestTimes, Times: kj.Times, OfflineRuns: kj.OfflineRuns,
	}
	// Keep the configured K consistent with the loaded model.
	s.cfg.K = km.K
	return nil
}

// SaveKnowledge writes the trained knowledge to w as JSON. It fails if the
// system has not been trained.
func (s *System) SaveKnowledge(w io.Writer) error {
	if s.knowledge == nil {
		return fmt.Errorf("vesta: SaveKnowledge before TrainOffline")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(knowledgeToJSON(s.knowledge))
}

// LoadKnowledge restores previously saved knowledge into the system,
// replacing any trained state. The system's catalog must contain every VM
// the knowledge references.
func (s *System) LoadKnowledge(r io.Reader) error {
	var kj knowledgeJSON
	if err := json.NewDecoder(r).Decode(&kj); err != nil {
		return fmt.Errorf("vesta: decoding knowledge: %w", err)
	}
	return s.setKnowledgeFromJSON(kj)
}
