package sim

// Fault-aware execution paths. The unchecked paths (Run, RunTimed,
// ProfileRun) remain infallible ground-truth physics; the checked paths
// below consult Config.Chaos and can fail with a typed *RunError. Fault
// decisions come from a chaos stream that is completely separate from the
// physics stream, so:
//
//   - with a nil (or all-zero) plan the checked paths are byte-identical to
//     the unchecked ones, and
//   - a run that fails and is retried (attempt+1) re-rolls only the fault
//     dice — if the retry survives, it measures exactly what the original
//     run would have measured.

import (
	"errors"
	"fmt"
	"math"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/metrics"
	"vesta/internal/obs"
	"vesta/internal/rng"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// RunError reports a fault-injected run failure. WastedSec is the simulated
// cluster time burned before the run died (billed but useless).
type RunError struct {
	Fault     chaos.Fault
	App       string
	VM        string
	WastedSec float64
}

// Error implements the error interface.
func (e *RunError) Error() string {
	return fmt.Sprintf("sim: run of %s on %s killed by %s after %.1fs",
		e.App, e.VM, e.Fault, e.WastedSec)
}

// oomPressureGate: the chaos plan draws OOM candidates at the configured
// rate, but only runs whose working set actually crowds memory can die of
// it. 0.8 means "within 25% of spilling".
const oomPressureGate = 0.8

// RunChecked is Run with fault injection: identical physics, but the run
// can die. On failure the partial RunResult is still returned (its trace is
// marked Partial) alongside a *RunError.
func (s *Simulator) RunChecked(app workload.App, vm cloud.VMType, seed uint64) (RunResult, error) {
	return s.RunAttempt(app, vm, seed, 0)
}

// RunAttempt is RunChecked for a specific retry attempt. Attempts re-roll
// the fault decision without touching the physics stream.
func (s *Simulator) RunAttempt(app workload.App, vm cloud.VMType, seed, attempt uint64) (RunResult, error) {
	f := s.cfg.Chaos.ForRun(app.Name, vm.Name, seed, attempt)
	if f.LaunchFailure {
		// The cluster never came up: only launch (and plan) overhead burned,
		// no physics executed, no trace collected.
		p := paramsFor(app.Framework)
		wasted := p.launchOverhead + p.planOverhead
		s.faultEvent(app.Name, vm.Name, seed, attempt, chaos.LaunchFailure, "", wasted)
		return RunResult{
				App: app, VM: vm, Nodes: s.cfg.Nodes,
				Seconds: wasted,
				CostUSD: wasted / 3600 * vm.PriceHour * float64(s.cfg.Nodes),
			}, &RunError{
				Fault: chaos.LaunchFailure, App: app.Name, VM: vm.Name,
				WastedSec: wasted,
			}
	}

	r, src := s.run(app, vm, seed)

	if f.StragglerFactor != 1 {
		for i := range r.Phases {
			r.Phases[i].Seconds *= f.StragglerFactor
		}
		r.Seconds *= f.StragglerFactor
		r.CostUSD = r.Seconds / 3600 * vm.PriceHour * float64(r.Nodes)
		s.faultEvent(app.Name, vm.Name, seed, attempt, chaos.Straggler,
			fmt.Sprintf("factor=%s", obs.FormatValue(f.StragglerFactor)), -1)
	}

	// Terminal kills: preemption strikes any run; the OOM killer only runs
	// under real memory pressure. If both land, the earlier one wins.
	kill := chaos.None
	frac := 1.0
	if f.Preempt {
		kill, frac = chaos.SpotPreemption, f.PreemptFrac
	}
	if f.OOM && r.MemPressure > oomPressureGate && (kill == chaos.None || f.OOMFrac < frac) {
		kill, frac = chaos.OOMKill, f.OOMFrac
	}
	if kill != chaos.None {
		truncateRun(&r, frac)
		r.Trace = s.sampleTrace(r.Phases, src)
		r.Trace.Partial = true
		applyDropout(r.Trace, f)
		s.faultEvent(app.Name, vm.Name, seed, attempt, kill,
			fmt.Sprintf("frac=%s", obs.FormatValue(frac)), r.Seconds)
		return r, &RunError{
			Fault: kill, App: app.Name, VM: vm.Name, WastedSec: r.Seconds,
		}
	}

	r.Trace = s.sampleTrace(r.Phases, src)
	applyDropout(r.Trace, f)
	if r.Trace.Dropped > 0 {
		s.faultEvent(app.Name, vm.Name, seed, attempt, chaos.SamplerDropout,
			fmt.Sprintf("dropped=%d", r.Trace.Dropped), -1)
	}
	return r, nil
}

// faultEvent emits one injected-fault trace event plus a per-class counter.
// The key embeds everything the chaos decision depends on, so the record is
// a pure function of the plan and survives any execution schedule.
func (s *Simulator) faultEvent(app, vm string, seed, attempt uint64, f chaos.Fault, detail string, wastedSec float64) {
	if !s.cfg.Tracer.Enabled() {
		return
	}
	key := fmt.Sprintf("sim/fault/app=%s/vm=%s/seed=%d/attempt=%d", app, vm, seed, attempt)
	msg := f.String()
	if detail != "" {
		msg += " " + detail
	}
	if wastedSec >= 0 {
		s.cfg.Tracer.EventSim(key, msg, wastedSec)
	} else {
		s.cfg.Tracer.Event(key, msg)
	}
	s.cfg.Tracer.Count("sim.faults."+f.String(), 1)
}

// truncateRun cuts the run after frac of its phase time: completed phases
// are kept, the phase straddling the cut is split, the rest are dropped.
// Seconds and CostUSD are recomputed for the billed partial execution.
func truncateRun(r *RunResult, frac float64) {
	physTotal := 0.0
	for _, ph := range r.Phases {
		physTotal += ph.Seconds
	}
	overhead := r.Seconds - physTotal // launch/plan overhead, noise-scaled
	cutoff := physTotal * frac
	elapsed := 0.0
	kept := r.Phases[:0]
	for _, ph := range r.Phases {
		if elapsed+ph.Seconds <= cutoff {
			kept = append(kept, ph)
			elapsed += ph.Seconds
			continue
		}
		remain := cutoff - elapsed
		if remain > 1e-9 {
			ph.Seconds = remain
			kept = append(kept, ph)
			elapsed += remain
		}
		break
	}
	r.Phases = kept
	r.Seconds = overhead + elapsed
	r.CostUSD = r.Seconds / 3600 * r.VM.PriceHour * float64(r.Nodes)
}

// applyDropout NaNs out whole samples at the decision's per-sample rate,
// using the decision's own dropout stream so the physics and sampling
// streams are untouched.
func applyDropout(tr *metrics.Trace, f chaos.RunFaults) {
	if tr == nil || f.DropoutRate <= 0 {
		return
	}
	dsrc := rng.New(f.DropoutSeed)
	n := tr.Len()
	for i := 0; i < n; i++ {
		if dsrc.Float64() < f.DropoutRate {
			for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
				tr.Series[id][i] = math.NaN()
			}
			tr.Dropped++
		}
	}
}

// ProfileAttempt is ProfileRun with fault injection: each of the Repeats
// runs can die. Failed runs are excluded from the P90/mean/correlation
// aggregation but counted in FailedRuns, with their burned cluster time in
// WastedSec. Runs whose trace is too corrupt for a usable correlation
// vector still contribute their execution time. When every repeat dies, the
// zero-run Profile (carrying the accounting fields) is returned together
// with the last *RunError. With a nil chaos plan the result is
// byte-identical to ProfileRun.
func (s *Simulator) ProfileAttempt(app workload.App, vm cloud.VMType, seed, attempt uint64) (Profile, error) {
	var (
		runs    []float64
		lats    []float64
		thr     float64
		first   RunResult
		haveRun bool
		corrSum metrics.CorrVector
		corrN   int
		failed  int
		wasted  float64
		lastErr error
	)
	for i := 0; i < s.cfg.Repeats; i++ {
		r, err := s.RunAttempt(app, vm, seed+uint64(i)*runSeedStride, attempt)
		if err != nil {
			failed++
			var re *RunError
			if errors.As(err, &re) {
				wasted += re.WastedSec
			}
			lastErr = err
			continue
		}
		runs = append(runs, r.Seconds)
		lats = append(lats, r.LatencyMS)
		thr += r.ThroughputMBps
		if !haveRun {
			first, haveRun = r, true
		}
		cv := metrics.Correlations(r.Trace, r.Exec)
		if cv.Valid() {
			for j := range corrSum {
				corrSum[j] += cv[j]
			}
			corrN++
		}
	}
	if len(runs) == 0 {
		return Profile{
			App: app, VM: vm, Nodes: s.cfg.Nodes,
			FailedRuns: failed, WastedSec: wasted,
		}, lastErr
	}
	if corrN > 0 {
		for j := range corrSum {
			corrSum[j] /= float64(corrN)
		}
	} else {
		for j := range corrSum {
			corrSum[j] = math.NaN()
		}
	}
	p90 := stats.P90(runs)
	return Profile{
		App: app, VM: vm, Nodes: s.cfg.Nodes,
		Runs: runs, P90Seconds: p90, MeanSec: stats.Mean(runs),
		CostUSD: p90 / 3600 * vm.PriceHour * float64(s.cfg.Nodes),
		Trace:   first.Trace, Exec: first.Exec, Corr: corrSum,
		P90LatencyMS: stats.P90(lats), ThroughputMBps: thr / float64(len(runs)),
		FailedRuns: failed, WastedSec: wasted,
	}, nil
}
