package sim

import (
	"math"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/metrics"
	"vesta/internal/workload"
)

var (
	catalog = cloud.Catalog120()
	byName  = cloud.ByName(catalog)
)

func app(t *testing.T, name string) workload.App {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRunDeterministic(t *testing.T) {
	s := New(DefaultConfig())
	a := app(t, "Spark-lr")
	vm := byName["m5.xlarge"]
	r1 := s.Run(a, vm, 7)
	r2 := s.Run(a, vm, 7)
	if r1.Seconds != r2.Seconds {
		t.Fatalf("same seed gave %v and %v", r1.Seconds, r2.Seconds)
	}
	r3 := s.Run(a, vm, 8)
	if r3.Seconds == r1.Seconds {
		t.Fatal("different seeds gave identical times")
	}
}

func TestRunPositiveAndFinite(t *testing.T) {
	s := New(DefaultConfig())
	for _, a := range workload.All() {
		for _, vmName := range []string{"t3.small", "m5.xlarge", "c5.8xlarge", "r5.large", "i3en.12xlarge"} {
			r := s.Run(a, byName[vmName], 1)
			if r.Seconds <= 0 || math.IsInf(r.Seconds, 0) || math.IsNaN(r.Seconds) {
				t.Fatalf("%s on %s: bad time %v", a.Name, vmName, r.Seconds)
			}
			if r.CostUSD <= 0 {
				t.Fatalf("%s on %s: bad cost %v", a.Name, vmName, r.CostUSD)
			}
		}
	}
}

func TestTraceValidForAllApps(t *testing.T) {
	s := New(DefaultConfig())
	vm := byName["m5.2xlarge"]
	for _, a := range workload.All() {
		r := s.Run(a, vm, 3)
		if err := r.Trace.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", a.Name, err)
		}
		c := metrics.Correlations(r.Trace, r.Exec)
		if !c.Valid() {
			t.Fatalf("%s: invalid correlation vector %v", a.Name, c)
		}
	}
}

func TestMoreComputeIsFasterForCPUBound(t *testing.T) {
	s := New(DefaultConfig())
	a := app(t, "Spark-lr") // compute-intensive, memory fits on big VMs
	small := s.Run(a, byName["c5.xlarge"], 1).Seconds
	big := s.Run(a, byName["c5.8xlarge"], 1).Seconds
	if big >= small {
		t.Fatalf("8xlarge (%v s) not faster than xlarge (%v s) for CPU-bound app", big, small)
	}
}

func TestMemoryPressurePenalizesSpark(t *testing.T) {
	s := New(DefaultConfig())
	a := app(t, "Spark-kmeans") // 1.8 GiB/GB x 8 GB = 14.4 GiB working set
	// c5.large: 4 GiB/node x 4 nodes x 0.7 usable = 11.2 GiB -> pressure > 1.
	tight := s.Run(a, byName["c5.large"], 1)
	if tight.MemPressure <= 1 {
		t.Fatalf("expected memory pressure > 1 on c5.large, got %v", tight.MemPressure)
	}
	// r5.large has identical vCPUs but 4x the memory.
	roomy := s.Run(a, byName["r5.large"], 1)
	if roomy.MemPressure >= 1 {
		t.Fatalf("expected pressure < 1 on r5.large, got %v", roomy.MemPressure)
	}
	if roomy.Seconds >= tight.Seconds {
		t.Fatalf("memory-rich r5.large (%v s) not faster than starved c5.large (%v s)",
			roomy.Seconds, tight.Seconds)
	}
}

func TestFrameworkOverheadOrdering(t *testing.T) {
	// The same kernel on the same VM: Spark's in-memory iteration must beat
	// Hadoop's disk-materialized supersteps for an iterative ML kernel.
	s := New(DefaultConfig())
	vm := byName["m5.2xlarge"]
	hadoop := s.Run(app(t, "Hadoop-lr"), vm, 1).Seconds
	spark := s.Run(app(t, "Spark-lr"), vm, 1).Seconds
	if spark >= hadoop {
		t.Fatalf("Spark-lr (%v s) not faster than Hadoop-lr (%v s) on %s", spark, hadoop, vm.Name)
	}
}

func TestRawMetricLevelsDifferAcrossFrameworks(t *testing.T) {
	// Figure 2's premise: the same kernel produces different low-level
	// metric levels on different frameworks (Hadoop materializes to disk).
	s := New(DefaultConfig())
	vm := byName["m5.2xlarge"]
	h := s.Run(app(t, "Hadoop-lr"), vm, 1)
	sp := s.Run(app(t, "Spark-lr"), vm, 1)
	diskMean := func(tr *metrics.Trace) float64 {
		total := 0.0
		for i := range tr.Series[metrics.DiskRead] {
			total += tr.Series[metrics.DiskRead][i] + tr.Series[metrics.DiskWrite][i]
		}
		return total / float64(tr.Len())
	}
	if diskMean(h.Trace) <= 1.3*diskMean(sp.Trace) {
		t.Fatalf("Hadoop disk activity (%v) not clearly above Spark (%v)",
			diskMean(h.Trace), diskMean(sp.Trace))
	}
}

func TestCorrelationsTransferAcrossFrameworks(t *testing.T) {
	// The paper's key observation: correlation vectors of the same kernel on
	// different frameworks are much closer than vectors of different kernels
	// on the same framework.
	s := New(DefaultConfig())
	vm := byName["m5.2xlarge"]
	corr := func(name string) metrics.CorrVector {
		r := s.Run(app(t, name), vm, 1)
		return metrics.Correlations(r.Trace, r.Exec)
	}
	hadoopLR := corr("Hadoop-lr")
	sparkLR := corr("Spark-lr")
	sparkSort := corr("Spark-sort")
	sameKernel := metrics.Distance(hadoopLR, sparkLR)
	diffKernel := metrics.Distance(sparkLR, sparkSort)
	if sameKernel >= diffKernel {
		t.Fatalf("cross-framework same-kernel distance %v >= same-framework cross-kernel %v; transfer signal missing",
			sameKernel, diffKernel)
	}
}

func TestBurstableThrottling(t *testing.T) {
	s := New(DefaultConfig())
	a := app(t, "Spark-lr")
	t3 := s.Run(a, byName["t3.2xlarge"], 1).Seconds
	m5 := s.Run(a, byName["m5.2xlarge"], 1).Seconds
	// Same nominal size, but the burstable family throttles on long jobs.
	if t3 <= m5 {
		t.Fatalf("t3.2xlarge (%v s) should be slower than m5.2xlarge (%v s) on a long job", t3, m5)
	}
}

func TestStorageOptimizedWinsShuffleHeavy(t *testing.T) {
	s := New(DefaultConfig())
	a := app(t, "Hadoop-terasort") // full shuffle, disk-materialized
	i3 := s.Run(a, byName["i3.2xlarge"], 1).Seconds
	r4 := s.Run(a, byName["r4.2xlarge"], 1).Seconds
	if i3 >= r4 {
		t.Fatalf("i3.2xlarge (%v s) should beat r4.2xlarge (%v s) on disk-bound terasort", i3, r4)
	}
}

func TestProfileRunP90(t *testing.T) {
	s := New(DefaultConfig())
	p := s.ProfileRun(app(t, "Spark-lr"), byName["m5.xlarge"], 5)
	if len(p.Runs) != 10 {
		t.Fatalf("profile has %d runs, want 10", len(p.Runs))
	}
	lo, hi := p.Runs[0], p.Runs[0]
	for _, r := range p.Runs {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if p.P90Seconds < lo || p.P90Seconds > hi {
		t.Fatalf("P90 %v outside run range [%v, %v]", p.P90Seconds, lo, hi)
	}
	if p.P90Seconds < p.MeanSec*0.8 {
		t.Fatalf("P90 %v implausibly below mean %v", p.P90Seconds, p.MeanSec)
	}
	if err := p.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSvdppHighVariance(t *testing.T) {
	// The paper reports Spark-svd++ runs with close to 40% variance.
	s := New(DefaultConfig())
	pSvd := s.ProfileRun(app(t, "Spark-svd++"), byName["m5.xlarge"], 5)
	pLR := s.ProfileRun(app(t, "Spark-lr"), byName["m5.xlarge"], 5)
	cv := func(p Profile) float64 {
		mean := p.MeanSec
		v := 0.0
		for _, r := range p.Runs {
			v += (r - mean) * (r - mean)
		}
		return math.Sqrt(v/float64(len(p.Runs))) / mean
	}
	if cv(pSvd) < 2*cv(pLR) {
		t.Fatalf("svd++ CV %v not clearly above lr CV %v", cv(pSvd), cv(pLR))
	}
}

func TestConfigDefaults(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	if cfg.Nodes != 4 || cfg.Repeats != 10 || cfg.SampleSec != 5 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestTinyRunStillSampled(t *testing.T) {
	// Even a sub-5-second job must produce at least one metric sample.
	s := New(Config{Nodes: 4, Repeats: 2, SampleSec: 5})
	a := app(t, "Hive-select").WithInput(0.05)
	r := s.Run(a, byName["c5.8xlarge"], 1)
	if r.Trace.Len() < 1 {
		t.Fatal("no samples emitted for a tiny run")
	}
	if err := r.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPhasesSumApproxTotal(t *testing.T) {
	s := New(DefaultConfig())
	a := app(t, "Hadoop-terasort")
	r := s.Run(a, byName["m5.xlarge"], 2)
	sum := 0.0
	for _, ph := range r.Phases {
		sum += ph.Seconds
	}
	// Total = phases + launch/plan overhead (noise applies to both).
	if sum >= r.Seconds {
		t.Fatalf("phase sum %v >= total %v (overheads missing)", sum, r.Seconds)
	}
	if sum < 0.5*r.Seconds {
		t.Fatalf("phase sum %v is too small a share of total %v", sum, r.Seconds)
	}
}

func TestHeatMapShapeFollowsCPUMemRatio(t *testing.T) {
	// Figure 1: the best region follows a CPU-to-memory ratio. For a
	// compute+memory balanced ML kernel, both an extremely memory-lean and
	// an extremely memory-fat VM must cost more than a balanced one.
	s := New(DefaultConfig())
	a := app(t, "Spark-kmeans")
	cost := func(name string) float64 { return s.ProfileRun(a, byName[name], 3).CostUSD }
	// Same ladder size, three memory ratios.
	balanced := cost("m5.large") // 4 GiB/vCPU
	lean := cost("c5.large")     // 2 GiB/vCPU, memory-starved for kmeans
	fat := cost("x1.large")      // 15 GiB/vCPU, overpriced memory
	if balanced >= lean || balanced >= fat {
		t.Fatalf("balanced m5 cost %v should beat lean c5 %v and fat x1 %v", balanced, lean, fat)
	}
}

func TestStreamingUsesNetworkIngest(t *testing.T) {
	s := New(DefaultConfig())
	a := app(t, "Hadoop-twitter")
	// A network-rich family should beat its plain sibling on streaming.
	m5n := s.Run(a, byName["m5n.xlarge"], 1).Seconds
	m5 := s.Run(a, byName["m5.xlarge"], 1).Seconds
	if m5n >= m5 {
		t.Fatalf("m5n (%v s) should beat m5 (%v s) on streaming ingest", m5n, m5)
	}
}

func TestPhaseKindString(t *testing.T) {
	for _, k := range []PhaseKind{PhaseRead, PhaseCompute, PhaseShuffle, PhaseSync} {
		if k.String() == "" {
			t.Fatal("empty phase name")
		}
	}
	if PhaseKind(42).String() != "phase(42)" {
		t.Fatal("unknown phase fallback wrong")
	}
}

func BenchmarkRun(b *testing.B) {
	s := New(DefaultConfig())
	a, _ := workload.ByName("Spark-lr")
	vm := byName["m5.xlarge"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Run(a, vm, uint64(i))
	}
}

func BenchmarkProfileRun(b *testing.B) {
	s := New(DefaultConfig())
	a, _ := workload.ByName("Spark-lr")
	vm := byName["m5.xlarge"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ProfileRun(a, vm, uint64(i))
	}
}

func TestHiveEngineOverheads(t *testing.T) {
	// Hive adds query-planning latency and plan-translated extra stages on
	// top of MapReduce: the same kernel must run slower on Hive than on
	// Hadoop at the same VM type.
	s := New(DefaultConfig())
	vm := byName["m5.2xlarge"]
	hadoopLR := app(t, "Hadoop-lr")
	hiveLR := hadoopLR
	hiveLR.Name = "Hive-lr"
	hiveLR.Framework = workload.Hive
	// Compare repeated-run P90s so run-to-run noise cannot flip the order.
	hd := s.ProfileRun(hadoopLR, vm, 3)
	hv := s.ProfileRun(hiveLR, vm, 3)
	if hv.P90Seconds <= hd.P90Seconds {
		t.Fatalf("Hive (%v s) not slower than Hadoop (%v s) for the same kernel", hv.P90Seconds, hd.P90Seconds)
	}
	// The stage multiplier creates more barriers: Hive runs more phases.
	hdPhases := s.Run(hadoopLR, vm, 3).Phases
	hvPhases := s.Run(hiveLR, vm, 3).Phases
	if len(hvPhases) <= len(hdPhases) {
		t.Fatalf("Hive has %d phases, Hadoop %d; plan translation should add stages",
			len(hvPhases), len(hdPhases))
	}
}

func TestInterferenceInflatesVariance(t *testing.T) {
	quiet := New(Config{Repeats: 10})
	busy := New(Config{Repeats: 10, Interference: 0.3})
	a := app(t, "Spark-lr")
	vm := byName["m5.xlarge"]
	cv := func(p Profile) float64 {
		m := p.MeanSec
		v := 0.0
		for _, r := range p.Runs {
			v += (r - m) * (r - m)
		}
		return math.Sqrt(v/float64(len(p.Runs))) / m
	}
	q := cv(quiet.ProfileRun(a, vm, 5))
	b := cv(busy.ProfileRun(a, vm, 5))
	if b <= q {
		t.Fatalf("interference did not inflate variance: quiet CV %v, busy CV %v", q, b)
	}
}

func TestZeroInterferenceMatchesDefault(t *testing.T) {
	// Interference 0 must be byte-identical to the default configuration so
	// the paper experiments are unaffected by the extension knob.
	a := app(t, "Hadoop-terasort")
	vm := byName["i3.2xlarge"]
	d := New(DefaultConfig()).ProfileRun(a, vm, 9)
	z := New(Config{Nodes: 4, Repeats: 10, SampleSec: 5, Interference: 0}).ProfileRun(a, vm, 9)
	if d.P90Seconds != z.P90Seconds {
		t.Fatalf("zero interference changed results: %v vs %v", d.P90Seconds, z.P90Seconds)
	}
}
