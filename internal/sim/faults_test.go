package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/metrics"
	"vesta/internal/workload"
)

func faultTestApp() workload.App {
	apps := workload.BySet(workload.SourceTraining)
	if len(apps) == 0 {
		panic("no training apps")
	}
	return apps[0]
}

func faultTestVM(t *testing.T) cloud.VMType {
	t.Helper()
	vm, ok := cloud.ByName(cloud.Catalog())["m5.xlarge"]
	if !ok {
		t.Fatal("m5.xlarge not in catalog")
	}
	return vm
}

// TestCheckedPathMatchesUncheckedWithoutChaos is the byte-identity
// acceptance check at the sim layer: nil plan => RunChecked == Run and
// ProfileAttempt == ProfileRun, bit for bit.
func TestCheckedPathMatchesUncheckedWithoutChaos(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	for _, cfg := range []Config{{}, {Chaos: chaos.NewPlan(1, chaos.Rates{})}} {
		s := New(cfg)
		want := s.Run(app, vm, 42)
		got, err := s.RunChecked(app, vm, 42)
		if err != nil {
			t.Fatalf("RunChecked failed without faults: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("RunChecked != Run with cfg %+v", cfg)
		}
		wantP := s.ProfileRun(app, vm, 42)
		gotP, err := s.ProfileAttempt(app, vm, 42, 0)
		if err != nil {
			t.Fatalf("ProfileAttempt failed without faults: %v", err)
		}
		if !reflect.DeepEqual(gotP, wantP) {
			t.Fatalf("ProfileAttempt != ProfileRun with cfg %+v", cfg)
		}
	}
}

// TestChaosDoesNotPerturbUncheckedPaths: enabling a plan must leave the
// ground-truth paths untouched.
func TestChaosDoesNotPerturbUncheckedPaths(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	clean := New(Config{})
	chaotic := New(Config{Chaos: chaos.NewPlan(3, chaos.Uniform(0.5))})
	if !reflect.DeepEqual(chaotic.Run(app, vm, 9), clean.Run(app, vm, 9)) {
		t.Fatal("Run differs when a chaos plan is configured")
	}
	if !reflect.DeepEqual(chaotic.ProfileRun(app, vm, 9), clean.ProfileRun(app, vm, 9)) {
		t.Fatal("ProfileRun differs when a chaos plan is configured")
	}
}

// TestRetrySurvivorMatchesOriginalPhysics: a run killed at attempt 0 that
// survives at a later attempt must report the measurements the fault-free
// run would have.
func TestRetrySurvivorMatchesOriginalPhysics(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	clean := New(Config{})
	s := New(Config{Chaos: chaos.NewPlan(17, chaos.Rates{SpotPreemption: 0.6})})
	found := false
	for seed := uint64(0); seed < 200 && !found; seed++ {
		if _, err := s.RunAttempt(app, vm, seed, 0); err == nil {
			continue
		}
		for attempt := uint64(1); attempt < 10; attempt++ {
			r, err := s.RunAttempt(app, vm, seed, attempt)
			if err != nil {
				continue
			}
			want := clean.Run(app, vm, seed)
			if !reflect.DeepEqual(r, want) {
				t.Fatalf("seed %d attempt %d: surviving retry differs from fault-free run", seed, attempt)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no (killed, then survived) pair found in 200 seeds at rate 0.6")
	}
}

func TestPreemptedRunIsPartialAndCheaper(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	clean := New(Config{})
	s := New(Config{Chaos: chaos.NewPlan(21, chaos.Rates{SpotPreemption: 1})})
	r, err := s.RunChecked(app, vm, 5)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if re.Fault != chaos.SpotPreemption {
		t.Fatalf("fault = %v, want spot-preemption", re.Fault)
	}
	if r.Trace == nil || !r.Trace.Partial {
		t.Fatal("killed run's trace not marked Partial")
	}
	full := clean.Run(app, vm, 5)
	if r.Seconds >= full.Seconds {
		t.Fatalf("preempted run (%.1fs) not shorter than full run (%.1fs)", r.Seconds, full.Seconds)
	}
	if re.WastedSec != r.Seconds {
		t.Fatalf("WastedSec %.1f != partial Seconds %.1f", re.WastedSec, r.Seconds)
	}
	if err := r.Trace.Validate(); err != nil {
		t.Fatalf("partial trace invalid: %v", err)
	}
}

func TestLaunchFailureWastesOnlyOverhead(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	s := New(Config{Chaos: chaos.NewPlan(8, chaos.Rates{LaunchFailure: 1})})
	r, err := s.RunChecked(app, vm, 3)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if re.Fault != chaos.LaunchFailure {
		t.Fatalf("fault = %v, want launch-failure", re.Fault)
	}
	if r.Trace != nil {
		t.Fatal("launch failure produced a trace")
	}
	if re.WastedSec <= 0 || re.WastedSec > 60 {
		t.Fatalf("launch-failure waste %.1fs implausible", re.WastedSec)
	}
}

func TestSamplerDropoutMarksNaNSamples(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	s := New(Config{Chaos: chaos.NewPlan(4, chaos.Rates{SamplerDropout: 0.3})})
	r, err := s.RunChecked(app, vm, 2)
	if err != nil {
		t.Fatalf("dropout should not kill the run: %v", err)
	}
	if r.Trace.Dropped == 0 {
		t.Fatal("no samples dropped at rate 0.3")
	}
	nan := 0
	for i := 0; i < r.Trace.Len(); i++ {
		if math.IsNaN(r.Trace.Series[metrics.CPUUser][i]) {
			nan++
			for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
				if !math.IsNaN(r.Trace.Series[id][i]) {
					t.Fatalf("sample %d dropped in cpu.user but not in %v", i, id)
				}
			}
		}
	}
	if nan != r.Trace.Dropped {
		t.Fatalf("Dropped=%d but %d NaN samples", r.Trace.Dropped, nan)
	}
	// The damaged trace must still yield a usable correlation vector via
	// listwise deletion at this dropout level.
	if cv := metrics.Correlations(r.Trace, r.Exec); !cv.Valid() {
		t.Fatalf("correlations unusable at 30%% dropout: %v", cv)
	}
}

func TestStragglerStretchesRun(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	clean := New(Config{})
	s := New(Config{Chaos: chaos.NewPlan(13, chaos.Rates{Straggler: 1})})
	r, err := s.RunChecked(app, vm, 6)
	if err != nil {
		t.Fatalf("straggler should not kill the run: %v", err)
	}
	full := clean.Run(app, vm, 6)
	if r.Seconds <= full.Seconds*1.2 {
		t.Fatalf("straggler run %.1fs not clearly longer than clean %.1fs", r.Seconds, full.Seconds)
	}
}

func TestProfileAttemptAccountsFailures(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	s := New(Config{Repeats: 10, Chaos: chaos.NewPlan(31, chaos.Rates{SpotPreemption: 0.4})})
	p, err := s.ProfileAttempt(app, vm, 77, 0)
	if err != nil {
		if p.FailedRuns != s.Config().Repeats {
			t.Fatalf("error returned but only %d/%d runs failed", p.FailedRuns, s.Config().Repeats)
		}
		return
	}
	if p.FailedRuns == 0 {
		t.Skip("no failures at this seed; preemption rate draw was lucky")
	}
	if len(p.Runs)+p.FailedRuns != s.Config().Repeats {
		t.Fatalf("runs %d + failed %d != repeats %d", len(p.Runs), p.FailedRuns, s.Config().Repeats)
	}
	if p.WastedSec <= 0 {
		t.Fatal("failed runs but WastedSec == 0")
	}
	if p.P90Seconds <= 0 {
		t.Fatal("surviving profile has no P90")
	}
}

func TestProfileAttemptAllRunsDead(t *testing.T) {
	app, vm := faultTestApp(), faultTestVM(t)
	s := New(Config{Chaos: chaos.NewPlan(2, chaos.Rates{LaunchFailure: 1})})
	p, err := s.ProfileAttempt(app, vm, 1, 0)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if p.FailedRuns != s.Config().Repeats || len(p.Runs) != 0 {
		t.Fatalf("all-dead profile: FailedRuns=%d Runs=%d", p.FailedRuns, len(p.Runs))
	}
	if p.WastedSec <= 0 {
		t.Fatal("all-dead profile charged no waste")
	}
}
