package sim

import (
	"math"
	"testing"
	"testing/quick"

	"vesta/internal/cloud"
	"vesta/internal/rng"
	"vesta/internal/workload"
)

// Property tests on the execution model's physical invariants, fuzzing over
// synthesized workloads and random catalog entries.

func randomApp(seed uint64) workload.App {
	src := rng.New(seed)
	fws := []workload.Framework{workload.Hadoop, workload.Hive, workload.Spark}
	return workload.Synthesize(fws[src.Intn(3)], int(seed%1000), src)
}

func TestPropPositiveFiniteTimes(t *testing.T) {
	f := func(seed uint64) bool {
		app := randomApp(seed)
		vm := catalog[int(seed%uint64(len(catalog)))]
		s := New(Config{Repeats: 2})
		r := s.RunTimed(app, vm, seed)
		return r.Seconds > 0 && !math.IsInf(r.Seconds, 0) && !math.IsNaN(r.Seconds) &&
			r.CostUSD > 0 && !math.IsNaN(r.CostUSD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTracesAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		app := randomApp(seed)
		vm := catalog[int((seed/7)%uint64(len(catalog)))]
		s := New(Config{Repeats: 2})
		r := s.Run(app, vm, seed)
		return r.Trace.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMoreDataNeverFaster(t *testing.T) {
	// Scaling the input up must not reduce execution time (same seed, so
	// noise cancels in direction).
	f := func(seed uint64) bool {
		app := randomApp(seed)
		vm := catalog[int((seed/3)%uint64(len(catalog)))]
		s := New(Config{Repeats: 1})
		small := s.RunTimed(app, vm, seed).Seconds
		big := s.RunTimed(app.WithInput(app.InputGB*2), vm, seed).Seconds
		return big >= small*0.98 // allow sub-percent numeric wiggle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropFasterCPUSameFamilyNeverSlower(t *testing.T) {
	// Within a family, the next size up (more cores, same ratios) must not
	// make a compute-bound workload slower by more than the coordination
	// cost explains (bounded slack).
	a, err := workload.ByName("Spark-lr")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Repeats: 2})
	for _, fam := range []string{"M5", "C5", "R5"} {
		var prev float64
		for i, vm := range famTypes(fam) {
			sec := s.ProfileRun(a, vm, 1).P90Seconds
			if i > 0 && sec > prev*1.35 {
				t.Fatalf("%s: size step made Spark-lr %.2fx slower", vm.Name, sec/prev)
			}
			prev = sec
		}
	}
}

func famTypes(fam string) []cloud.VMType {
	var out []cloud.VMType
	for _, vm := range catalog {
		if vm.Family == fam {
			out = append(out, vm)
		}
	}
	return out
}

func TestPropBurstableNeverFasterThanSibling(t *testing.T) {
	// A burstable type must never beat the same-size M5 on a long job.
	f := func(seed uint64) bool {
		app := randomApp(seed)
		if app.Demand.Streaming {
			return true // ingest-bound; CPU throttle may not bind
		}
		// Compare the repeated-run P90s; run-to-run noise is independent
		// per VM, so leave generous slack and rely on the trend.
		s := New(Config{Repeats: 6})
		burst := s.ProfileRun(app, byName["t3.2xlarge"], seed).P90Seconds
		std := s.ProfileRun(app, byName["m5.2xlarge"], seed).P90Seconds
		return burst >= std*0.8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
