// Package sim is the cluster-execution substrate that stands in for the
// paper's Amazon EC2 testbed running Hadoop, Hive and Spark. It simulates a
// big data application on a cluster of identical VMs using a Bulk
// Synchronous Parallel (BSP) stage model — the architecture the paper's
// conclusion identifies as common to all covered frameworks — and emits the
// execution time, the 5-second-sampled low-level metric trace, and the
// scalar execution metrics that Vesta's Data Collector consumes.
//
// Framework engines differ in how a kernel's demand turns into machine
// work:
//
//   - Hadoop materializes every shuffle to disk, re-reads input from HDFS on
//     every superstep, and pays a heavy per-job and per-stage JVM launch
//     cost.
//   - Hive adds query planning latency and a stage-multiplication factor on
//     top of the MapReduce execution model.
//   - Spark keeps shuffles in memory when they fit, caches re-used input
//     across iterations (RDD cache), pays small per-stage costs, but loses a
//     larger fraction of VM memory to executor overhead and suffers steep
//     penalties under memory pressure (spill/recompute; the Mesos-style
//     watcher converts outright OOM into a retry penalty, Section 5.1).
//
// These differences reproduce the paper's core phenomena: identical kernels
// show very different raw metric *levels* across frameworks (Figure 2's
// naive-reuse failure, Figure 1's differently shaped heat maps) while the
// *correlation structure* of the metrics stays kernel-intrinsic (the
// transferable knowledge of Table 1).
package sim

import (
	"fmt"
	"math"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/metrics"
	"vesta/internal/obs"
	"vesta/internal/rng"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// PhaseKind labels the BSP phase a slice of wall-clock time belongs to.
type PhaseKind int

// The four BSP phases of a superstep.
const (
	PhaseRead PhaseKind = iota
	PhaseCompute
	PhaseShuffle
	PhaseSync
)

// String implements fmt.Stringer.
func (p PhaseKind) String() string {
	switch p {
	case PhaseRead:
		return "read"
	case PhaseCompute:
		return "compute"
	case PhaseShuffle:
		return "shuffle"
	case PhaseSync:
		return "sync"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Phase is one contiguous simulated activity interval.
type Phase struct {
	Kind    PhaseKind
	Seconds float64
	// Levels capture the characteristic resource utilization of the phase
	// (indexed by metrics.SeriesID), before sampling noise.
	Levels [metrics.NumSeries]float64
}

// RunResult is the outcome of a single simulated run.
type RunResult struct {
	App     workload.App
	VM      cloud.VMType
	Nodes   int
	Seconds float64
	CostUSD float64
	Trace   *metrics.Trace
	Exec    metrics.ExecStats
	Phases  []Phase
	// MemPressure is workingSet / usable memory; > 1 means spilling.
	MemPressure float64
	// LatencyMS and ThroughputMBps are the streaming service metrics the
	// paper's conclusion proposes for latency-sensitive workloads. They are
	// zero for batch workloads.
	LatencyMS      float64
	ThroughputMBps float64
}

// Profile aggregates the paper's repeated-measurement protocol: each
// (workload, VM type) pair is run Repeats times and summarized by the P90
// execution time (a conservative estimate under cloud variability).
type Profile struct {
	App        workload.App
	VM         cloud.VMType
	Nodes      int
	Runs       []float64
	P90Seconds float64
	MeanSec    float64
	CostUSD    float64 // P90 time x cluster price
	Trace      *metrics.Trace
	Exec       metrics.ExecStats
	// Corr is the correlation-similarity vector averaged over all repeats,
	// mirroring the paper's per-run correlation recording (Section 4.1).
	Corr metrics.CorrVector
	// P90LatencyMS and ThroughputMBps summarize the streaming service
	// metrics across repeats (zero for batch workloads).
	P90LatencyMS   float64
	ThroughputMBps float64
	// FailedRuns and WastedSec account for fault-injected repeats that died
	// before completing (ProfileAttempt only; always zero on ProfileRun).
	// WastedSec is the simulated cluster time burned by the failed runs —
	// the Figure-8-style overhead a resilient pipeline must still pay for.
	FailedRuns int
	WastedSec  float64
}

// Config tunes the simulator. The zero value is not usable; call New.
type Config struct {
	Nodes     int     // cluster size (VM count); the paper fixes this per app
	Repeats   int     // runs per (workload, VM) pair; paper: 10
	SampleSec float64 // metric sampling interval; paper: 5 s
	// Interference adds multi-tenant noisy-neighbour contention on top of
	// each workload's own run variance: 0 (default) is a quiet cloud, 0.2
	// is a busy shared region. It scales both the run-to-run jitter and the
	// phase-balance instability.
	Interference float64
	// Chaos, when non-nil, injects deterministic faults on the checked run
	// paths (RunChecked, RunAttempt, ProfileAttempt). The unchecked paths
	// (Run, RunTimed, ProfileRun) never fail regardless of Chaos — they are
	// the ground-truth physics that baselines and oracle tables rely on.
	Chaos *chaos.Plan
	// Tracer, when enabled, receives one event per injected fault on the
	// checked run paths, keyed by (app, vm, seed, attempt) — a pure function
	// of the chaos plan, so traces stay byte-identical at any worker count.
	Tracer *obs.Tracer
}

// DefaultConfig matches the paper's measurement protocol.
func DefaultConfig() Config {
	return Config{Nodes: 4, Repeats: 10, SampleSec: 5}
}

// Simulator executes workloads against VM types deterministically.
type Simulator struct {
	cfg Config
}

// New returns a Simulator with the given config, applying defaults for
// unset fields.
func New(cfg Config) *Simulator {
	def := DefaultConfig()
	if cfg.Nodes <= 0 {
		cfg.Nodes = def.Nodes
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = def.Repeats
	}
	if cfg.SampleSec <= 0 {
		cfg.SampleSec = def.SampleSec
	}
	return &Simulator{cfg: cfg}
}

// Config returns the simulator's effective configuration.
func (s *Simulator) Config() Config { return s.cfg }

// frameworkParams captures how each engine maps demand to machine work.
type frameworkParams struct {
	launchOverhead  float64 // job submission + container/JVM start, seconds
	stageOverhead   float64 // per-superstep scheduling cost, seconds
	planOverhead    float64 // SQL planning (Hive), seconds
	stageMultiplier float64 // extra stages from plan translation
	materialize     bool    // shuffle written to disk then read (MapReduce)
	canCache        bool    // input cached in memory across iterations
	usableMemFrac   float64 // fraction of VM memory usable for data
	cpuEfficiency   float64 // engine CPU efficiency (JVM, serialization)
}

func paramsFor(f workload.Framework) frameworkParams {
	switch f {
	case workload.Hadoop:
		return frameworkParams{
			launchOverhead: 12, stageOverhead: 7, planOverhead: 0,
			stageMultiplier: 1.0, materialize: true, canCache: false,
			usableMemFrac: 0.85, cpuEfficiency: 0.80,
		}
	case workload.Hive:
		return frameworkParams{
			launchOverhead: 14, stageOverhead: 7, planOverhead: 5,
			stageMultiplier: 1.3, materialize: true, canCache: false,
			usableMemFrac: 0.85, cpuEfficiency: 0.72,
		}
	case workload.Spark:
		return frameworkParams{
			launchOverhead: 5, stageOverhead: 0.9, planOverhead: 0,
			stageMultiplier: 1.0, materialize: false, canCache: true,
			usableMemFrac: 0.70, cpuEfficiency: 0.95,
		}
	}
	panic("sim: unknown framework " + string(f))
}

// splitGB is the HDFS-style input split size that determines task counts.
const splitGB = 0.125

// burstWindowSec is how long a burstable (T-family) VM sustains full speed.
const burstWindowSec = 120

// burstThrottle is the sustained CPU fraction once burst credits run out.
const burstThrottle = 0.55

// Run simulates one execution of app on a cluster of nodes x vm, using seed
// for run-to-run cloud noise, including the sampled metric trace. It never
// fails: pathological configurations (tiny memory, huge data) produce long
// execution times, exactly like an overloaded real cluster.
func (s *Simulator) Run(app workload.App, vm cloud.VMType, seed uint64) RunResult {
	r, src := s.run(app, vm, seed)
	r.Trace = s.sampleTrace(r.Phases, src)
	return r
}

// RunTimed is Run without the metric trace — the fast path for repeated
// measurements where only the execution time matters.
func (s *Simulator) RunTimed(app workload.App, vm cloud.VMType, seed uint64) RunResult {
	r, _ := s.run(app, vm, seed)
	return r
}

// run computes the physics of one execution and returns the RNG positioned
// for trace sampling.
func (s *Simulator) run(app workload.App, vm cloud.VMType, seed uint64) (RunResult, *rng.Source) {
	src := rng.New(seed ^ hashString(app.Name) ^ hashString(vm.Name))
	p := paramsFor(app.Framework)
	d := app.Demand
	nodes := s.cfg.Nodes

	cores := float64(nodes * vm.VCPUs)
	cpuSpeed := vm.CPUFactor * p.cpuEfficiency

	data := app.InputGB
	iters := float64(d.Iterations)
	stages := math.Max(1, math.Round(iters*p.stageMultiplier))

	// Task parallelism: how well the data splits cover the cores. Each
	// superstep re-processes the partitioned data, so the per-stage task
	// count equals the split count.
	tasks := math.Max(1, math.Round(data/splitGB))
	tasksPerStage := tasks
	utilization := math.Min(1, tasks/cores)

	// Memory pressure on each node.
	usablePerNode := vm.MemoryGiB * p.usableMemFrac
	workingSetPerNode := d.MemPerGB * data / float64(nodes)
	pressure := workingSetPerNode / usablePerNode

	// Spill/recompute penalties under pressure.
	spillGBPerStage := 0.0
	computePenalty := 1.0
	if pressure > 1 {
		over := math.Min(pressure-1, 3)
		spillGBPerStage = over * usablePerNode * float64(nodes) / stages
		if p.canCache {
			// Spark: lost cache partitions are recomputed and the JVM heap
			// thrashes in GC; the Mesos-style memory watcher turns outright
			// OOM into retries rather than crashes. The penalty is
			// super-linear — modest overcommit already hurts badly.
			computePenalty = 1 + 1.5*over + 2*over*over
		} else {
			computePenalty = 1 + 0.4*over + 0.5*over*over
		}
	}

	// Spark RDD cache: what fraction of the re-read input fits in memory.
	cacheFit := 0.0
	if p.canCache && d.CacheReuse > 0 {
		cacheFit = math.Min(1, usablePerNode*float64(nodes)*0.6/math.Max(data, 1e-9))
	}

	skewFactor := 1 + d.Skew*0.6

	// Aggregate cluster bandwidths in GB/s.
	diskGBs := float64(nodes) * vm.DiskMBps / 1024
	netGBs := float64(nodes) * vm.NetworkGbps / 8 // Gbps -> GB/s

	// Total shuffle volume is ShufflePerGB x data per superstep; Hive's plan
	// translation spreads the same volume over more stages.
	shuffleVolPerStage := d.ShufflePerGB * data * iters / stages
	outputVol := d.OutputPerGB * data

	var phases []Phase
	totalCPUWork := 0.0 // core-seconds actually consumed, for burst modeling

	for st := 0; st < int(stages); st++ {
		first := st == 0
		// --- read phase ---
		readVol := 0.0
		if first {
			readVol = data
		} else {
			reread := d.CacheReuse * data
			readVol = reread * (1 - cacheFit)
			if !p.canCache {
				readVol = reread
			}
		}
		readVol += spillGBPerStage * 0.5
		readTime := readVol / math.Max(diskGBs, 1e-9)
		if d.Streaming {
			// Arrival-driven: ingest over the network instead of local scans.
			readTime = readVol / math.Max(netGBs, 1e-9)
		}

		// --- compute phase ---
		work := d.ComputePerGB * data / stages // core-seconds at baseline speed
		computeTime := work / (cores * cpuSpeed * math.Max(utilization, 1e-9)) *
			skewFactor * computePenalty
		totalCPUWork += work

		// --- shuffle phase ---
		shuffleTime := shuffleVolPerStage / math.Max(netGBs, 1e-9) * skewFactor
		if p.materialize {
			// MapReduce writes map output to disk and reducers re-read it.
			shuffleTime += 2 * shuffleVolPerStage / math.Max(diskGBs, 1e-9)
		} else if pressure > 0.9 {
			// Spark spills shuffle blocks when memory is tight.
			shuffleTime += shuffleVolPerStage / math.Max(diskGBs, 1e-9) * math.Min(pressure, 2)
		}

		// --- write phase (final stage) + spill writes ---
		writeVol := spillGBPerStage * 0.5
		if st == int(stages)-1 {
			writeVol += outputVol
		}
		writeTime := writeVol / math.Max(diskGBs, 1e-9)

		// --- synchronization barrier ---
		// Beyond the per-framework stage overhead, wide clusters pay a
		// coordination cost per superstep (task scheduling, barrier fan-in)
		// and skewed workloads pay a straggler tail that grows with
		// parallelism. This gives each workload a finite optimal machine
		// size: scaling past the task count buys nothing and costs
		// coordination.
		coord := 0.05*math.Sqrt(cores) + 0.8*d.Skew*math.Log2(cores+1)
		syncTime := d.SyncIntensity*(0.4+0.15*math.Log2(float64(nodes)+1)) + p.stageOverhead + coord

		phases = append(phases,
			readPhase(readTime+writeTime, d.Streaming, pressure, utilization),
			computePhase(computeTime, pressure, utilization),
			shufflePhase(shuffleTime, p.materialize, pressure, utilization),
			syncPhase(syncTime, tasksPerStage),
		)
	}

	total := p.launchOverhead + p.planOverhead
	for _, ph := range phases {
		total += ph.Seconds
	}

	// Burstable throttling: if the job outlives the burst window, CPU-bound
	// phases slow down for the remainder.
	if vm.Burstable && total > burstWindowSec {
		throttled := 0.0
		elapsed := 0.0
		for i := range phases {
			if elapsed > burstWindowSec && phases[i].Kind == PhaseCompute {
				extra := phases[i].Seconds * (1/burstThrottle - 1)
				phases[i].Seconds += extra
				throttled += extra
			}
			elapsed += phases[i].Seconds
		}
		total += throttled
	}

	// Run-to-run cloud noise: a multiplicative log-normal factor on the
	// whole run plus independent per-phase structural jitter. The structural
	// component matters: workloads with high RunVariance (Spark-svd++) do
	// not just run slower or faster as a whole — their phase balance shifts
	// between runs, which destabilizes the measured correlation vector
	// exactly as the paper observes. Multi-tenant interference (if
	// configured) compounds the workload's own variance.
	variance := d.RunVariance + s.cfg.Interference
	noise := src.LogNorm(0.5*s.cfg.Interference*s.cfg.Interference, variance)
	total = total * noise
	adjusted := 0.0
	for i := range phases {
		phaseNoise := noise * src.LogNorm(0, variance/2)
		delta := phases[i].Seconds * (phaseNoise - noise)
		phases[i].Seconds *= phaseNoise
		adjusted += delta
	}
	total += adjusted

	exec := metrics.ExecStats{
		TasksCompute:       tasks * iters,
		TasksComm:          stages * float64(nodes),
		TasksSync:          stages,
		DataPerCycle:       data / math.Max(d.ComputePerGB*data*2.5, 1e-9) * 1e3, // GB per 1e9 cycles (2.5 GHz baseline)
		DataPerIteration:   data / iters,
		DataPerParallelism: data / tasks,
	}

	// Streaming service metrics (the conclusion's extension): model the
	// pipeline as a queueing system driven by the ingest-to-capacity
	// utilization. Throughput is the sustained processing rate; latency
	// grows sharply as the arrival rate approaches capacity (M/M/1-style
	// 1/(1-rho) blow-up) plus the per-superstep batching delay.
	latencyMS, throughput := 0.0, 0.0
	if d.Streaming {
		ingestMBs := netGBs * 1024 * 0.5 // half the fabric for ingest
		processMBs := cores * cpuSpeed / d.ComputePerGB * 1024
		capacity := math.Min(ingestMBs, processMBs)
		arrival := data * 1024 / math.Max(total, 1e-9) // offered load, MB/s
		throughput = math.Min(arrival, capacity)
		rho := math.Min(arrival/math.Max(capacity, 1e-9), 0.99)
		serviceMS := 1e3 * d.ComputePerGB / 1024 / math.Max(cores*cpuSpeed, 1e-9) * 64 // per 64MB micro-batch
		batchMS := 1e3 * (p.stageOverhead + d.SyncIntensity*0.4)
		latencyMS = serviceMS/(1-rho) + batchMS
		latencyMS *= computePenalty // memory pressure hurts tail latency too
	}

	hours := total / 3600
	return RunResult{
		App: app, VM: vm, Nodes: nodes,
		Seconds: total,
		CostUSD: hours * vm.PriceHour * float64(nodes),
		Exec:    exec, Phases: phases,
		MemPressure:    pressure,
		LatencyMS:      latencyMS,
		ThroughputMBps: throughput,
	}, src
}

// runSeedStride spaces the per-repeat seeds of a profile; ProfileRun and
// ProfileAttempt must use the same stride so a fault-free checked profile is
// byte-identical to the unchecked one.
const runSeedStride = 0x9e37

// ProfileRun performs the paper's full measurement protocol: Repeats runs,
// P90 execution time, cost at P90, and the metric trace of the first run.
func (s *Simulator) ProfileRun(app workload.App, vm cloud.VMType, seed uint64) Profile {
	runs := make([]float64, s.cfg.Repeats)
	lats := make([]float64, s.cfg.Repeats)
	thr := 0.0
	var first RunResult
	var corrSum metrics.CorrVector
	for i := 0; i < s.cfg.Repeats; i++ {
		r := s.Run(app, vm, seed+uint64(i)*runSeedStride)
		runs[i] = r.Seconds
		lats[i] = r.LatencyMS
		thr += r.ThroughputMBps
		if i == 0 {
			first = r
		}
		cv := metrics.Correlations(r.Trace, r.Exec)
		for j := range corrSum {
			corrSum[j] += cv[j]
		}
	}
	for j := range corrSum {
		corrSum[j] /= float64(s.cfg.Repeats)
	}
	p90 := stats.P90(runs)
	return Profile{
		App: app, VM: vm, Nodes: s.cfg.Nodes,
		Runs: runs, P90Seconds: p90, MeanSec: stats.Mean(runs),
		CostUSD: p90 / 3600 * vm.PriceHour * float64(s.cfg.Nodes),
		Trace:   first.Trace, Exec: first.Exec, Corr: corrSum,
		P90LatencyMS: stats.P90(lats), ThroughputMBps: thr / float64(s.cfg.Repeats),
	}
}

// phase constructors set the characteristic utilization levels that the
// sampler perturbs. Levels are fractions of capacity in [0, 1].

func readPhase(sec float64, streaming bool, pressure, util float64) Phase {
	var lv [metrics.NumSeries]float64
	lv[metrics.CPUUser] = 0.12
	lv[metrics.CPUSystem] = 0.10
	lv[metrics.CPUIOWait] = 0.45
	lv[metrics.CPUIdle] = 1 - lv[metrics.CPUUser] - lv[metrics.CPUSystem] - lv[metrics.CPUIOWait]
	lv[metrics.RAMUsed] = clamp01(0.3 + 0.5*math.Min(pressure, 1))
	lv[metrics.BufferUsed] = 0.55
	lv[metrics.CacheUsed] = 0.65
	lv[metrics.SwapRate] = swapLevel(pressure)
	lv[metrics.DiskRead] = 0.85
	lv[metrics.DiskWrite] = 0.25
	lv[metrics.DiskUtil] = 0.80
	lv[metrics.NetSend] = 0.05
	lv[metrics.NetRecv] = 0.08
	if streaming {
		lv[metrics.DiskRead], lv[metrics.NetRecv] = 0.20, 0.85
		lv[metrics.NetSend] = 0.30
		lv[metrics.NetDrop] = 0.04
	}
	lv[metrics.TasksComputeStep] = 0.2 * util
	lv[metrics.TasksCommStep] = 0.3
	lv[metrics.TasksSyncStep] = 0.05
	return Phase{Kind: PhaseRead, Seconds: sec, Levels: lv}
}

func computePhase(sec float64, pressure, util float64) Phase {
	var lv [metrics.NumSeries]float64
	lv[metrics.CPUUser] = clamp01(0.85 * util)
	lv[metrics.CPUSystem] = 0.06
	lv[metrics.CPUIOWait] = 0.03
	lv[metrics.CPUIdle] = clamp01(1 - lv[metrics.CPUUser] - lv[metrics.CPUSystem] - lv[metrics.CPUIOWait])
	lv[metrics.RAMUsed] = clamp01(0.35 + 0.6*math.Min(pressure, 1))
	lv[metrics.BufferUsed] = 0.25
	lv[metrics.CacheUsed] = 0.45
	lv[metrics.SwapRate] = swapLevel(pressure)
	lv[metrics.DiskRead] = 0.06
	lv[metrics.DiskWrite] = 0.05
	lv[metrics.DiskUtil] = 0.08
	lv[metrics.NetSend] = 0.04
	lv[metrics.NetRecv] = 0.04
	lv[metrics.TasksComputeStep] = clamp01(0.9 * util)
	lv[metrics.TasksCommStep] = 0.05
	lv[metrics.TasksSyncStep] = 0.03
	if pressure > 1 {
		// Spill traffic shows up as background disk activity.
		lv[metrics.DiskRead] = 0.30
		lv[metrics.DiskWrite] = 0.35
		lv[metrics.DiskUtil] = 0.40
		lv[metrics.CPUIOWait] = 0.15
	}
	return Phase{Kind: PhaseCompute, Seconds: sec, Levels: lv}
}

func shufflePhase(sec float64, materialize bool, pressure, util float64) Phase {
	var lv [metrics.NumSeries]float64
	lv[metrics.CPUUser] = 0.20
	lv[metrics.CPUSystem] = 0.22
	lv[metrics.CPUIOWait] = 0.18
	lv[metrics.CPUIdle] = clamp01(1 - lv[metrics.CPUUser] - lv[metrics.CPUSystem] - lv[metrics.CPUIOWait])
	lv[metrics.RAMUsed] = clamp01(0.30 + 0.5*math.Min(pressure, 1))
	lv[metrics.BufferUsed] = 0.60
	lv[metrics.CacheUsed] = 0.55
	lv[metrics.SwapRate] = swapLevel(pressure)
	lv[metrics.NetSend] = 0.80
	lv[metrics.NetRecv] = 0.80
	lv[metrics.NetDrop] = 0.02
	if materialize {
		// MapReduce: map outputs written to disk and re-read by reducers.
		lv[metrics.DiskRead] = 0.55
		lv[metrics.DiskWrite] = 0.60
		lv[metrics.DiskUtil] = 0.65
	} else {
		// Spark also writes shuffle files to local disk (without HDFS
		// round-trips), so shuffle-time disk activity is moderate, not zero.
		lv[metrics.DiskRead] = 0.42
		lv[metrics.DiskWrite] = 0.50
		lv[metrics.DiskUtil] = 0.52
	}
	lv[metrics.TasksComputeStep] = 0.10
	lv[metrics.TasksCommStep] = clamp01(0.9 * util)
	// Tasks pile into the superstep barrier while the shuffle drains, so the
	// synchronization-step count peaks here (framework-independent).
	lv[metrics.TasksSyncStep] = 0.50
	return Phase{Kind: PhaseShuffle, Seconds: sec, Levels: lv}
}

func syncPhase(sec float64, tasksPerStage float64) Phase {
	var lv [metrics.NumSeries]float64
	lv[metrics.CPUUser] = 0.05
	lv[metrics.CPUSystem] = 0.04
	lv[metrics.CPUIOWait] = 0.02
	lv[metrics.CPUIdle] = 1 - lv[metrics.CPUUser] - lv[metrics.CPUSystem] - lv[metrics.CPUIOWait]
	lv[metrics.RAMUsed] = 0.30
	lv[metrics.BufferUsed] = 0.20
	lv[metrics.CacheUsed] = 0.40
	lv[metrics.DiskRead] = 0.02
	lv[metrics.DiskWrite] = 0.03
	lv[metrics.DiskUtil] = 0.04
	lv[metrics.NetSend] = 0.10
	lv[metrics.NetRecv] = 0.10
	lv[metrics.TasksComputeStep] = 0.02
	lv[metrics.TasksCommStep] = 0.05
	// Most tasks have drained from the barrier by now; the scheduler is
	// setting up the next superstep.
	lv[metrics.TasksSyncStep] = clamp01(0.15 + 0.1*math.Min(tasksPerStage/64, 1))
	return Phase{Kind: PhaseSync, Seconds: sec, Levels: lv}
}

func swapLevel(pressure float64) float64 {
	if pressure <= 1 {
		return 0.01 * pressure
	}
	return clamp01(0.2 * (pressure - 1))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// maxTraceSamples caps a run's trace length: the collector samples every
// SampleSec, but for very long runs it downsamples (widens the interval) so
// the stored trace stays bounded — correlation features depend on the phase
// structure, not on the raw sample count.
const maxTraceSamples = 512

// sampleTrace walks the phase list emitting one sample per SampleSec with
// multiplicative noise, guaranteeing at least one sample per run.
func (s *Simulator) sampleTrace(phases []Phase, src *rng.Source) *metrics.Trace {
	interval := s.cfg.SampleSec
	total := 0.0
	for _, ph := range phases {
		total += ph.Seconds
	}
	if total/interval > maxTraceSamples {
		interval = total / maxTraceSamples
	}
	tr := &metrics.Trace{SampleSec: interval}

	// The collector reports average utilizations per sampling window
	// (Section 4.1: "average resource utilizations" every 5 seconds), so
	// each sample blends the levels of every phase active inside the
	// window, weighted by the time the phase spends in it. This matters: a
	// 1-second barrier inside a 5-second window contributes 20% of the
	// sample instead of aliasing between all-or-nothing.
	emit := func(levels [metrics.NumSeries]float64) {
		for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
			v := levels[id]
			// +/-8% relative noise plus a small absolute floor keeps
			// constant series from producing degenerate zero-variance
			// correlations.
			v = v*(1+src.Norm(0, 0.08)) + math.Abs(src.Norm(0, 0.01))
			tr.Series[id] = append(tr.Series[id], clamp01(v))
		}
	}

	if total <= 0 {
		// Degenerate zero-length run: emit one sample of the first phase.
		if len(phases) > 0 {
			emit(phases[0].Levels)
		}
		return tr
	}

	winStart := 0.0
	pi := 0         // current phase index
	phaseEnd := 0.0 // absolute end time of phases[pi]
	if len(phases) > 0 {
		phaseEnd = phases[0].Seconds
	}
	for winStart < total {
		winEnd := math.Min(winStart+interval, total)
		var mix [metrics.NumSeries]float64
		covered := 0.0
		cursor := winStart
		for cursor < winEnd-1e-12 && pi < len(phases) {
			// Time this phase contributes inside the window.
			sliceEnd := math.Min(phaseEnd, winEnd)
			dur := sliceEnd - cursor
			if dur > 0 {
				for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
					switch id {
					case metrics.TasksComputeStep, metrics.TasksCommStep, metrics.TasksSyncStep:
						// Step-task counts come from the framework's
						// scheduler, not from time-averaged sampling: a
						// barrier is reported for the window no matter how
						// short it is. Track the window maximum (scaled by
						// covered time below).
						if phases[pi].Levels[id] > mix[id]/math.Max(covered+dur, 1e-12) {
							mix[id] = phases[pi].Levels[id] * (covered + dur)
						}
					default:
						mix[id] += phases[pi].Levels[id] * dur
					}
				}
				covered += dur
				cursor = sliceEnd
			}
			if phaseEnd <= winEnd+1e-12 && pi < len(phases) {
				pi++
				if pi < len(phases) {
					phaseEnd += phases[pi].Seconds
				}
			} else {
				break
			}
		}
		if covered > 0 {
			for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
				mix[id] /= covered
			}
			emit(mix)
		}
		winStart = winEnd
	}
	if tr.Len() == 0 {
		emit(phases[0].Levels)
	}
	return tr
}

// hashString gives a stable 64-bit hash (FNV-1a) for seed mixing.
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
