// Package parallel provides the worker-pool execution layer shared by every
// hot loop in the repository: K-Means restart attempts, per-target CMF
// solves, and the bench evaluation sweeps (leave-one-out folds, ablations,
// baseline comparisons).
//
// The contract that keeps parallel runs bit-identical to serial runs is that
// every task is a pure function of its index: task i writes only to slot i
// of a result slice and draws randomness only from an rng.Source derived by
// Split(i) from a per-loop parent seed. Under that contract the scheduling
// order is unobservable, so any worker count — including 1 — produces the
// same bytes.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vesta/internal/obs"
)

// Resolve maps a configured worker count to an effective one: values <= 0
// mean "one worker per CPU".
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (workers <= 0 means runtime.NumCPU()). It returns once every call has
// finished. With workers == 1 (or n < 2) the loop runs inline on the calling
// goroutine, so serial callers pay no synchronization cost.
func For(workers, n int, fn func(i int)) {
	forWorkers(workers, n, func(_, i int) { fn(i) })
}

// forWorkers is the shared pool body; fn additionally receives the worker
// index so the instrumented variants can attribute tasks to workers.
func forWorkers(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Static index counter instead of a job channel: tasks are picked up in
	// order with one atomic fetch-add per task, and the pool shape cannot
	// influence which task runs (only when). The atomic matters on the
	// serving path, where a batch of cache hits makes tasks so short that a
	// mutex hand-off would dominate.
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(g, i)
			}
		}(g)
	}
	wg.Wait()
}

// ForObs is For with loop-shape observability: deterministic counters for
// the task volume (parallel.loops, parallel.tasks, parallel.tasks:<key>)
// plus a verbose-only worker-occupancy report. Per-worker occupancy is a
// wall-scheduling artifact — it legitimately varies across runs — so it is
// confined to the verbose stream and never enters the deterministic trace
// records (DESIGN.md §9). A nil tracer makes ForObs exactly For.
func ForObs(t *obs.Tracer, key string, workers, n int, fn func(i int)) {
	if !t.Enabled() || n <= 0 {
		For(workers, n, fn)
		return
	}
	sp := t.Start("parallel/" + key)
	t.Count("parallel.loops", 1)
	t.Count("parallel.tasks", int64(n))
	t.Count("parallel.tasks:"+key, int64(n))
	w := Resolve(workers)
	if w > n {
		w = n
	}
	occupancy := make([]int64, w)
	var mu sync.Mutex
	forWorkers(workers, n, func(worker, i int) {
		fn(i)
		mu.Lock()
		occupancy[worker]++
		mu.Unlock()
	})
	// The trace must be byte-identical at every -workers value, so the
	// deterministic records carry only the task volume; the pool width and
	// per-worker occupancy are schedule facts and stay verbose-only.
	sp.End()
	t.VerboseLine(fmt.Sprintf("parallel %-36s workers=%d occupancy=%v", key, w, occupancy))
}

// MapObs is Map over ForObs.
func MapObs[T any](t *obs.Tracer, key string, workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForObs(t, key, workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Map runs fn(i) for every i in [0, n) under For and collects the results in
// index order. The output is independent of the worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible tasks: it runs every task to completion and
// returns the results plus the first error by index order (nil if none
// failed). Running everything keeps the loop's rng consumption and the
// result slice independent of which task failed first under concurrency.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// MapErrObs is MapErr over ForObs: same fallible-task semantics with the
// loop-shape observability of ForObs.
func MapErrObs[T any](t *obs.Tracer, key string, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForObs(t, key, workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
