package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"vesta/internal/rng"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Fatalf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Fatalf("Resolve(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		hits := make([]int32, n)
		For(workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -1, func(int) { ran = true })
	if ran {
		t.Fatal("For ran a task for n <= 0")
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	n := 40
	want := Map(1, n, func(i int) string { return fmt.Sprintf("task-%d", i*i) })
	for _, workers := range []int{2, 4, 16} {
		got := Map(workers, n, func(i int) string { return fmt.Sprintf("task-%d", i*i) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSplitStreamsDeterministicAcrossWorkers is the package's core guarantee:
// per-task rng.Split(i) children yield bit-identical results at any worker
// count.
func TestSplitStreamsDeterministicAcrossWorkers(t *testing.T) {
	n := 32
	draw := func(workers int) []uint64 {
		parent := rng.New(99)
		return Map(workers, n, func(i int) uint64 {
			src := parent.Split(uint64(i))
			var sum uint64
			for k := 0; k < 100; k++ {
				sum += src.Uint64()
			}
			return sum
		})
	}
	want := draw(1)
	for _, workers := range []int{2, 8} {
		got := draw(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: task %d drew %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErr(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (int, error) {
		if i == 7 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		return i * 2, nil
	})
	if err == nil || err.Error() != "boom at 7" {
		t.Fatalf("err = %v, want boom at 7", err)
	}
	// Every non-failing task still completed.
	if out[9] != 18 || out[0] != 0 || out[3] != 6 {
		t.Fatalf("results incomplete: %v", out)
	}
	if _, err := MapErr(2, 4, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatalf("unexpected err: %v", err)
	}
}
