# Developer entry points. The repo is stdlib-only Go; no generated code.

GO ?= go

.PHONY: tier1 test vet build bench-parallel report chaos

# tier1 is the required pre-merge gate: vet, build, and the full test suite
# under the race detector (the parallel evaluation engine's determinism
# tests exercise the worker pool at several worker counts).
# The root-package experiment smoke test runs all 21 experiments; under the
# race detector on a small machine that exceeds go test's default 10m
# per-package budget, hence the explicit timeout.
tier1: vet build
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-parallel reruns the worker-sweep benchmarks recorded in
# results/parallel.md.
bench-parallel:
	$(GO) test ./internal/kmeans -run xxx -bench BenchmarkFit -benchtime 3x
	$(GO) test ./internal/core -run xxx -bench 'BenchmarkTrainOffline|BenchmarkPredictBatch' -benchtime 2x
	$(GO) test ./internal/bench -run xxx -bench BenchmarkFig3 -benchtime 1x

# report regenerates the committed seed-1 experiment reports.
report:
	$(GO) run ./cmd/vestabench -parallel 4 -o results/seed1.txt -md results/seed1.md

# chaos regenerates the committed fault-injection robustness sweep at the
# pinned seed and fails if the curve drifts from results/robustness.md.
# Deliberately outside the tier-1 budget (six full retrainings under fault
# injection); run it when touching chaos/, the resilient meter, or the
# degradation paths in core.
chaos:
	$(GO) run ./cmd/vestabench -exp ext-robustness -seed 1 -md results/robustness.md
	git diff --exit-code results/robustness.md
