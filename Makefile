# Developer entry points. The repo is stdlib-only Go; no generated code.

GO ?= go

.PHONY: tier1 test vet build bench-parallel report chaos trace lint bench-obs cover fuzz bench-serve bench-predict crash replicate-chaos replicate-report catalog-transfer loadgen loadgen-report rollout-chaos

# tier1 is the required pre-merge gate: vet, build, and the full test suite
# under the race detector (the parallel evaluation engine's determinism
# tests exercise the worker pool at several worker counts).
# The root-package experiment smoke test runs all 21 experiments; under the
# race detector on a small machine that exceeds go test's default 10m
# per-package budget, hence the explicit timeout.
tier1: vet build
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-parallel reruns the worker-sweep benchmarks recorded in
# results/parallel.md.
bench-parallel:
	$(GO) test ./internal/kmeans -run xxx -bench BenchmarkFit -benchtime 3x
	$(GO) test ./internal/core -run xxx -bench 'BenchmarkTrainOffline|BenchmarkPredictBatch' -benchtime 2x
	$(GO) test ./internal/bench -run xxx -bench BenchmarkFig3 -benchtime 1x

# report regenerates the committed seed-1 experiment reports.
report:
	$(GO) run ./cmd/vestabench -parallel 4 -o results/seed1.txt -md results/seed1.md

# trace demonstrates the observability layer (DESIGN.md §9): it runs the
# offline + online pipeline with tracing on at two worker counts and proves
# the serialized records are byte-identical before printing a summary.
trace:
	$(GO) run ./cmd/vesta profile -out /tmp/vesta-trace-k.json -trace /tmp/vesta-trace-w1.jsonl -workers 1
	$(GO) run ./cmd/vesta profile -out /tmp/vesta-trace-k.json -trace /tmp/vesta-trace-w8.jsonl -workers 8
	cmp /tmp/vesta-trace-w1.jsonl /tmp/vesta-trace-w8.jsonl
	$(GO) run ./cmd/vesta predict -knowledge /tmp/vesta-trace-k.json -app Spark-lr -trace /tmp/vesta-predict.jsonl -v
	@echo "trace records are byte-identical at -workers 1 and 8"

# lint runs gofmt plus staticcheck when it is installed (CI pins its own
# copy; locally it is optional — nothing is downloaded here).
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then echo "gofmt needed:"; echo "$$fmtout"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

# bench-obs reruns the tracing-overhead benchmarks recorded in
# results/obs.md (disabled tracing must cost <5% on the training and
# prediction hot paths).
bench-obs:
	$(GO) test ./internal/obs -run xxx -bench . -benchtime 100000x
	$(GO) test ./internal/cmf -run xxx -bench BenchmarkSolve -benchtime 20x
	$(GO) test ./internal/core -run xxx -bench 'BenchmarkTrainOffline|BenchmarkPredictBatch' -benchtime 2x

# chaos regenerates the committed fault-injection robustness sweep at the
# pinned seed and fails if the curve drifts from results/robustness.md.
# Deliberately outside the tier-1 budget (six full retrainings under fault
# injection); run it when touching chaos/, the resilient meter, or the
# degradation paths in core.
chaos:
	$(GO) run ./cmd/vestabench -exp ext-robustness -seed 1 -md results/robustness.md
	git diff --exit-code results/robustness.md

# cover enforces the coverage ratchet: total statement coverage must not
# fall below COVER_MIN (set slightly under the measured total — 76.8% when
# the floor was last ratcheted; raise it as coverage grows, never lower it).
# On failure (and success) it prints the per-package table so the package
# that dragged the total down is visible without rerunning anything.
COVER_MIN ?= 76.0
cover:
	$(GO) test -coverprofile=coverage.out -timeout 30m ./...
	@echo "statement coverage by package:"; \
	awk 'NR>1 { pkg=$$1; sub(/\/[^\/]*\.go:.*/,"",pkg); stmts[pkg]+=$$2; if ($$3>0) cov[pkg]+=$$2 } \
	  END { for (k in stmts) printf "  %-36s %5.1f%%\n", k, 100*cov[k]/stmts[k] }' coverage.out | sort; \
	total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub("%","",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% fell below the $(COVER_MIN)% ratchet"; exit 1; }

# fuzz runs every fuzz target for a short fixed budget (regression replay
# plus a little exploration). Go allows one -fuzz pattern per invocation,
# hence one line per target.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/serve -run xxx -fuzz FuzzServeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run xxx -fuzz FuzzStoreRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run xxx -fuzz FuzzTraceCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/bipartite -run xxx -fuzz FuzzGraphJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/loadgen -run xxx -fuzz FuzzLoadgenConfig -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rollout -run xxx -fuzz FuzzRolloutManifest -fuzztime $(FUZZTIME)

# loadgen is the load-generator determinism smoke (DESIGN.md §15): a quick
# single run and tuner sweep exercise the CLI modes, then the full
# capacity-planning report is rendered twice at the same seed — once serial,
# once fanned out on 8 evaluation workers — and the bytes must match.
loadgen:
	$(GO) run ./cmd/vesta loadgen -rps 200 -duration 5 -pattern burst -tenants 100
	$(GO) run ./cmd/vesta loadgen -tune -rps 1000 -duration 10 -tenants 100 -target-p99 50 -plan 1000,100000
	$(GO) run ./cmd/vesta loadgen -report -workers 1 -o /tmp/vesta-loadgen-w1.md
	$(GO) run ./cmd/vesta loadgen -report -workers 8 -o /tmp/vesta-loadgen-w8.md
	cmp /tmp/vesta-loadgen-w1.md /tmp/vesta-loadgen-w8.md
	@echo "loadgen report is byte-identical at -workers 1 and 8"

# loadgen-report regenerates the committed capacity-planning report at the
# pinned seed and fails if it drifts from results/loadgen.md.
loadgen-report:
	$(GO) run ./cmd/vesta loadgen -report -o results/loadgen.md
	git diff --exit-code results/loadgen.md

# bench-serve reruns the serving-throughput sweep recorded in
# results/serve.md (requests/sec vs worker count, cache on and off, plus the
# uncached-arm ladder: cold / warm / warm+memo / approx).
bench-serve:
	$(GO) test ./internal/serve -run xxx -bench 'BenchmarkServe|BenchmarkPredictNoCache' -benchtime 200x

# bench-predict is the uncached-predict regression gate (DESIGN.md §12): a
# benchstat-style before/after comparison of the legacy arm (cold solve, no
# memoization) against the default precomputed-plan arm, in one binary,
# failing when the fast path loses its margin (>10% regression of the
# no-cache arm trips the floor).
bench-predict:
	VESTA_BENCH_PREDICT=1 $(GO) test ./internal/serve -run TestPredictHotPathGate -v -timeout 20m

# crash runs the durability crash-point matrix (DESIGN.md §11): every
# byte-prefix truncation of a multi-record WAL, every injected fsync/rename
# failure and power-cut offset inside checkpoint compaction, the recovery
# edge cases, and the kill-and-restart serve round trip. Included in tier1
# via the normal test run; this target isolates it for fast iteration on
# the durable-state layer.
crash:
	$(GO) test -race ./internal/chaos -run 'TestFaultFS|TestOSFS'
	$(GO) test -race ./internal/wal
	$(GO) test -race ./internal/serve -run 'TestAbsorb|TestRecoveredServer'
	$(GO) test -race ./internal/cli -run TestServeDurableRoundTrip

# replicate-chaos runs the replication convergence matrix (DESIGN.md §13):
# every partition/lag/leader-kill schedule against three followers at
# workers 1/4/16, the WAL compaction/append races with mid-compaction crash
# points, the router's no-stale-read and failover tests, and the CLI
# leader→follower fleet round trip. Included in tier1 via the normal test
# run; this target isolates it for fast iteration on the replication layer.
replicate-chaos:
	$(GO) test -race ./internal/chaos -run 'TestNetPlan|TestPartitioned|TestLagged|TestLeaderAlive'
	$(GO) test -race -timeout 20m ./internal/replicate
	$(GO) test -race ./internal/wal -run 'TestCompactionRaces|TestCrashMidCompaction'
	$(GO) test -race ./internal/cli -run 'TestRoute|TestServeLeaderFollowerRoundTrip|TestServeReplicationFlagConflicts'

# replicate-report regenerates the failover-latency and follower-lag numbers
# in results/replicate.md (wall-clock medians; outside the determinism
# contract, so gated behind an env var rather than run in tier1).
replicate-report:
	VESTA_REPLICATE_REPORT=1 $(GO) test ./internal/replicate -run TestReplicateReport -v -timeout 20m

# rollout-chaos runs the health-gated rollout convergence matrix
# (DESIGN.md §16): every chaos plan (stage faults, health flaps, golden
# replay regressions at canary/partial/full) against a 3-follower fleet,
# the coordinator crash-resume sweep at every journaled decision point, the
# HTTP control-plane round trip, the long-poll edge cases (wait expiry,
# client disconnect, server-side cap, parked-stats responsiveness), and the
# CLI rollout command. Included in tier1 via the normal test run; this
# target isolates it for fast iteration on the rollout layer.
rollout-chaos:
	$(GO) test -race ./internal/chaos -run TestRolloutPlan
	$(GO) test -race -timeout 20m ./internal/rollout
	$(GO) test -race ./internal/wal -run 'TestJournal|TestManagerInstall'
	$(GO) test -race ./internal/serve -run 'TestStage|TestRollout'
	$(GO) test -race ./internal/replicate -run 'TestFetchWait|TestFollowerRunWait|TestFollowerPauses|TestLeaderInstall|TestStatsResponsive'
	$(GO) test -race ./internal/cli -run TestRolloutCommand

# catalog-transfer regenerates the committed cross-provider transfer
# experiment (EC2-trained knowledge ranking the Azure/GCP catalogs absorbed
# as versioned updates, vs native per-provider training) at the pinned seed
# and fails if the table drifts from results/catalog.md, then isolates the
# versioned-catalog test surface: catalog invariants across providers and
# update sequences, the catalog WAL record through crash recovery, and the
# catalog-version consistency token through serving and replication.
catalog-transfer:
	$(GO) run ./cmd/vestabench -exp ext-provider-transfer -seed 1 -md results/catalog.md
	git diff --exit-code results/catalog.md
	$(GO) test -race ./internal/cloud
	$(GO) test -race ./internal/wal -run 'TestCatalog|TestRecover'
	$(GO) test -race ./internal/serve -run 'TestCatalog|TestAbsorb'
	$(GO) test -race ./internal/replicate -run 'TestCatalog|TestFollower'
