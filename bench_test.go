// Package vesta_test hosts the paper-level benchmark harness: one testing.B
// entry per table/figure of the evaluation (plus the DESIGN.md ablations),
// each regenerating its experiment end to end. Run with:
//
//	go test -bench=. -benchmem
//
// Use -bench 'Fig06' etc. to regenerate one experiment; the rendered tables
// are printed once per benchmark via b.Logf under -v, or by cmd/vestabench.
package vesta_test

import (
	"testing"

	"vesta/internal/bench"
)

// runExperiment executes one registered experiment b.N times, reporting the
// number of table rows produced as a sanity metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		env := bench.NewEnv(1)
		table := exp.Run(env)
		rows = len(table.Rows)
		if rows == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// Figures 1-3: motivation experiments.

func BenchmarkFig01Heatmaps(b *testing.B)    { runExperiment(b, "fig1") }
func BenchmarkFig02NaiveReuse(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig03ScratchCost(b *testing.B) { runExperiment(b, "fig3") }

// Figures 6-13: evaluation experiments.

func BenchmarkFig06PredictionError(b *testing.B)    { runExperiment(b, "fig6") }
func BenchmarkFig07SparkLR(b *testing.B)            { runExperiment(b, "fig7") }
func BenchmarkFig08TrainingOverhead(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig09PCAImportance(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10CorrelationScatter(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11KMeansTuning(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkFig12TimeProgression(b *testing.B)    { runExperiment(b, "fig12") }
func BenchmarkFig13Budget(b *testing.B)             { runExperiment(b, "fig13") }

// DESIGN.md ablation benches.

func BenchmarkAblationLambda(b *testing.B)   { runExperiment(b, "ablation-lambda") }
func BenchmarkAblationInitRuns(b *testing.B) { runExperiment(b, "ablation-initruns") }
func BenchmarkAblationPCA(b *testing.B)      { runExperiment(b, "ablation-pca") }
func BenchmarkAblationFeatures(b *testing.B) { runExperiment(b, "ablation-features") }
func BenchmarkAblationK(b *testing.B)        { runExperiment(b, "ablation-k") }

// Extension experiments (beyond the paper's evaluation; see EXPERIMENTS.md).

func BenchmarkExtLatency(b *testing.B) { runExperiment(b, "ext-latency") }
func BenchmarkExtScaling(b *testing.B) { runExperiment(b, "ext-scaling") }
func BenchmarkExtSearch(b *testing.B)  { runExperiment(b, "ext-search") }

func BenchmarkExtInterference(b *testing.B) { runExperiment(b, "ext-interference") }

func BenchmarkExtDataSize(b *testing.B) { runExperiment(b, "ext-datasize") }

func BenchmarkExtRobustness(b *testing.B) { runExperiment(b, "ext-robustness") }

// TestAllExperimentsProduceTables is the harness smoke test: every
// registered experiment must run and render.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are expensive; skipped in -short mode")
	}
	env := bench.NewEnv(1)
	for _, exp := range bench.Registry() {
		if exp.ID == "ext-robustness" {
			// Six full retrainings under fault injection — outside the tier-1
			// time budget. Covered by `make chaos` at the pinned seed instead.
			continue
		}
		table := exp.Run(env)
		if len(table.Rows) == 0 {
			t.Errorf("%s produced no rows", exp.ID)
		}
		if table.Render() == "" {
			t.Errorf("%s rendered empty", exp.ID)
		}
	}
}
