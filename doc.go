// Package vesta is the module root of a complete Go reproduction of
// "Best VM Selection for Big Data Applications across Multiple Frameworks
// by Transfer Learning" (Wu et al., ICPP '21): the Vesta system, its
// baselines (PARIS, Ernest), and the simulated EC2 + Hadoop/Hive/Spark
// substrate its evaluation ran on.
//
// Layout:
//
//	internal/core       Vesta itself: offline knowledge abstraction, online
//	                    transfer prediction, cluster-size recommendation
//	internal/cloud      the 120-type EC2 catalog of Table 4
//	internal/workload   the 30 applications of Table 3 (+ synthesis)
//	internal/sim        deterministic BSP cluster simulator (the testbed)
//	internal/metrics    the 20 low-level metrics and Table 1 correlations
//	internal/oracle     exhaustive ground truth + run-overhead metering
//	internal/bipartite  the two-layer knowledge graph of Figure 4
//	internal/{mat,stats,rng,kmeans,pca,cmf,forest,nnls}
//	                    from-scratch numeric and ML substrates
//	internal/baselines  PARIS, PARIS-from-scratch, Ernest, Random,
//	                    CherryPick-lite, Arrow-lite
//	internal/bench      the experiment harness: Figures 1-3 and 6-13,
//	                    ablations, and extension experiments
//	internal/{store,traceview,latency,portfolio}
//	                    collector storage, trace inspection, and the
//	                    latency/fleet extensions
//	cmd/vesta           the user-facing CLI
//	cmd/vestabench      regenerates every table and figure
//	examples/...        five runnable scenarios
//
// Start with README.md, DESIGN.md (system inventory and substitutions) and
// EXPERIMENTS.md (paper-vs-measured results). bench_test.go in this
// directory exposes each experiment as a testing.B benchmark.
package vesta
