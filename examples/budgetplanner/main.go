// Budgetplanner: the practical-metrics scenario of Section 5.2. For a mix of
// applications across all three frameworks, find the cheapest VM type whose
// execution time stays within a tolerated slowdown of the fastest option,
// using Vesta's budget-objective sequential optimizer under a small run
// budget.
//
// Run with:
//
//	go run ./examples/budgetplanner
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// slowdownTolerance is how much slower than the fastest-found configuration
// we accept in exchange for a lower bill.
const slowdownTolerance = 1.25

// runBudget is the number of cluster deployments we are willing to pay for
// per application while deciding.
const runBudget = 10

func main() {
	catalog := cloud.Catalog120()
	simulator := sim.New(sim.DefaultConfig())
	byName := cloud.ByName(catalog)

	vesta, err := core.New(core.Config{Seed: 21}, catalog)
	if err != nil {
		log.Fatal(err)
	}
	if err := vesta.TrainOffline(workload.BySet(workload.SourceTraining), oracle.NewMeter(simulator, 21)); err != nil {
		log.Fatal(err)
	}

	apps := []string{
		"Hadoop-kmeans", "Hive-aggregation", "Spark-lr",
		"Spark-sort", "Spark-page-rank", "Spark-count",
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "APPLICATION\tCHOSEN VM\tTIME(s)\tBUDGET($)\tFASTEST SEEN(s)\tSAVING vs FASTEST")
	for _, name := range apps {
		app, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		steps, _, err := vesta.OptimizeFor(app, runBudget, core.MinimizeBudget, oracle.NewMeter(simulator, 22))
		if err != nil {
			log.Fatal(err)
		}

		// The fastest configuration seen within the budget.
		fastestSec := steps[0].ObservedSec
		for _, st := range steps {
			if st.ObservedSec < fastestSec {
				fastestSec = st.ObservedSec
			}
		}
		// The cheapest configuration within the slowdown tolerance.
		bestVM, bestSec, bestUSD := "", 0.0, -1.0
		for _, st := range steps {
			if st.ObservedSec > fastestSec*slowdownTolerance {
				continue
			}
			if bestUSD < 0 || st.ObservedUSD < bestUSD {
				bestVM, bestSec, bestUSD = st.VM, st.ObservedSec, st.ObservedUSD
			}
		}
		// Cost of always taking the fastest configuration instead.
		fastestUSD := 0.0
		for _, st := range steps {
			if st.ObservedSec == fastestSec {
				fastestUSD = st.ObservedUSD
			}
		}
		saving := (1 - bestUSD/fastestUSD) * 100
		fmt.Fprintf(w, "%s\t%s (%s)\t%.1f\t%.4f\t%.1f\t%.0f%%\n",
			name, bestVM, byName[bestVM].Category, bestSec, bestUSD, fastestSec, saving)
	}
	w.Flush()
	fmt.Printf("\npolicy: cheapest VM within %.0f%% of the fastest found, %d deployments per app\n",
		(slowdownTolerance-1)*100, runBudget)
}
