// Quickstart: train Vesta's offline knowledge on the Hadoop+Hive source
// workloads, then pick the best VM type for one new Spark workload with only
// four profiling runs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func main() {
	// The 120-type EC2 catalog of the paper's Table 4 and the deterministic
	// cluster simulator standing in for the real testbed.
	catalog := cloud.Catalog120()
	simulator := sim.New(sim.DefaultConfig())
	meter := oracle.NewMeter(simulator, 1)

	// 1. Build a Vesta system with the paper's defaults (k=9 labels,
	//    lambda=0.75, 3 random initialization runs).
	vesta, err := core.New(core.Config{Seed: 1}, catalog)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline phase: abstract knowledge from the 13 Hadoop+Hive training
	//    workloads (Table 3's source training set).
	sources := workload.BySet(workload.SourceTraining)
	fmt.Printf("offline: profiling %d source workloads on %d VM types...\n", len(sources), len(catalog))
	if err := vesta.TrainOffline(sources, meter); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: done (%d reference-VM profilings, one-time cost)\n\n", vesta.Knowledge().OfflineRuns)

	// 3. Online phase: a brand-new Spark workload arrives. Vesta runs it on
	//    one sandbox VM plus 3 random VM types, transfers the Hadoop/Hive
	//    knowledge through the bipartite graph, and ranks all 120 types.
	target, err := workload.ByName("Spark-lr")
	if err != nil {
		log.Fatal(err)
	}
	meter.Reset()
	pred, err := vesta.PredictOnline(target, meter)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("online: target %s\n", target)
	fmt.Printf("online: charged only %d reference VMs (vs ~100 to train from scratch)\n", pred.OnlineRuns)
	fmt.Printf("online: predicted best VM type: %s\n", pred.Best)
	fmt.Printf("online: predicted execution time there: %.1f s\n\n", pred.PredictedSec[pred.Best.Name])

	// 4. Check against exhaustive ground truth (the paper's brute-force
	//    definition of "best", feasible only in simulation).
	truth := oracle.Build(simulator, []workload.App{target}, catalog, 999)
	bestVM, bestSec, err := truth.BestByTime(target.Name)
	if err != nil {
		log.Fatal(err)
	}
	pickedSec, err := truth.Time(target.Name, pred.Best.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth best: %s at %.1f s\n", bestVM.Name, bestSec)
	fmt.Printf("Vesta's pick runs at %.1f s -> %.1f%% from optimal\n",
		pickedSec, (pickedSec-bestSec)/bestSec*100)
}
