// Multiframework: the paper's headline scenario. Knowledge is abstracted
// from Hadoop and Hive workloads, then reused for all 12 Spark target
// workloads, and the selection quality and training overhead are compared
// against the PARIS and Ernest baselines.
//
// Run with:
//
//	go run ./examples/multiframework
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"vesta/internal/baselines"
	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func main() {
	catalog := cloud.Catalog120()
	simulator := sim.New(sim.DefaultConfig())

	// Train Vesta on the 13 Hadoop+Hive training workloads.
	vesta, err := core.New(core.Config{Seed: 7}, catalog)
	if err != nil {
		log.Fatal(err)
	}
	vMeter := oracle.NewMeter(simulator, 7)
	if err := vesta.TrainOffline(workload.BySet(workload.SourceTraining), vMeter); err != nil {
		log.Fatal(err)
	}

	// Train PARIS (cross-framework reuse) on all 18 sources; Ernest needs no
	// offline phase.
	paris := baselines.NewParis(catalog, 7)
	if err := paris.Train(workload.SourceSet(), oracle.NewMeter(simulator, 8)); err != nil {
		log.Fatal(err)
	}
	ernest := baselines.NewErnest(catalog, 7)

	truth := oracle.Build(simulator, workload.TargetSet(), catalog, 999)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TARGET\tVESTA PICK\tREGRET\tPARIS REGRET\tERNEST REGRET\tVESTA MAPE\tPARIS MAPE\tCONVERGED")
	var vSum, pSum, eSum, vMapeSum, pMapeSum float64
	for _, target := range workload.TargetSet() {
		pred, err := vesta.PredictOnline(target, oracle.NewMeter(simulator, 100))
		if err != nil {
			log.Fatal(err)
		}
		ps, err := paris.Select(target, oracle.NewMeter(simulator, 101))
		if err != nil {
			log.Fatal(err)
		}
		es, err := ernest.Select(target, oracle.NewMeter(simulator, 102))
		if err != nil {
			log.Fatal(err)
		}
		_, bestSec, err := truth.BestByTime(target.Name)
		if err != nil {
			log.Fatal(err)
		}
		regret := func(vm string) float64 {
			sec, err := truth.Time(target.Name, vm)
			if err != nil {
				log.Fatal(err)
			}
			return (sec - bestSec) / bestSec * 100
		}
		v, p, e := regret(pred.Best.Name), regret(ps.Best.Name), regret(es.Best.Name)
		vSum, pSum, eSum = vSum+v, pSum+p, eSum+e
		// The paper's Equation 7 metric: how far the system's *predicted*
		// time on its pick sits from the true best time. This is where the
		// cross-framework reuse of PARIS breaks (its time scale is
		// Hadoop-anchored), even when its relative ranking survives.
		mape := func(predicted float64) float64 {
			return math.Abs(predicted-bestSec) / bestSec * 100
		}
		vMape := mape(pred.PredictedSec[pred.Best.Name])
		pMape := mape(ps.PredictedSec[ps.Best.Name])
		vMapeSum += vMape
		pMapeSum += pMape
		conv := "yes"
		if !pred.Converged {
			conv = "no (outlier)"
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.0f%%\t%.0f%%\t%s\n",
			target.Name, pred.Best.Name, v, p, e, vMape, pMape, conv)
	}
	w.Flush()
	n := float64(len(workload.TargetSet()))
	fmt.Printf("\nmean selection regret: Vesta %.1f%%  PARIS %.1f%%  Ernest %.1f%%\n", vSum/n, pSum/n, eSum/n)
	fmt.Println("(regret = how much slower the picked VM runs than the true best VM)")
	fmt.Printf("mean prediction MAPE (Equation 7): Vesta %.0f%%  PARIS %.0f%%\n", vMapeSum/n, pMapeSum/n)
	fmt.Println("(the paper's Figure 6 metric — this is where naive cross-framework reuse fails)")
	fmt.Println("\nonline overhead per new Spark workload: Vesta 4 runs (+refinement to 15),")
	fmt.Println("PARIS-from-scratch ~100 runs, Ernest 8 runs — the paper's Figure 8.")
}
