// Knowledgereuse: the operational lifecycle of Vesta's knowledge base —
// train once, persist, reload in a later session, predict, and absorb the
// newly learned target back into the graph (the red edges of Figure 4) so
// the knowledge base grows incrementally.
//
// Run with:
//
//	go run ./examples/knowledgereuse
package main

import (
	"bytes"
	"fmt"
	"log"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func main() {
	catalog := cloud.Catalog120()
	simulator := sim.New(sim.DefaultConfig())

	// Session 1: the expensive offline phase, then persist the knowledge.
	fmt.Println("session 1: offline training on Hadoop+Hive sources...")
	trainer, err := core.New(core.Config{Seed: 5}, catalog)
	if err != nil {
		log.Fatal(err)
	}
	if err := trainer.TrainOffline(workload.BySet(workload.SourceTraining),
		oracle.NewMeter(simulator, 5)); err != nil {
		log.Fatal(err)
	}
	var saved bytes.Buffer
	if err := trainer.SaveKnowledge(&saved); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: knowledge serialized (%d bytes)\n\n", saved.Len())

	// Session 2 (later, maybe another machine): reload and predict without
	// re-running a single offline profile.
	fmt.Println("session 2: reload knowledge, predict for new Spark workloads")
	predictor, err := core.New(core.Config{Seed: 5}, catalog)
	if err != nil {
		log.Fatal(err)
	}
	if err := predictor.LoadKnowledge(bytes.NewReader(saved.Bytes())); err != nil {
		log.Fatal(err)
	}

	before := predictor.Knowledge().Graph.Stats(0.05)
	fmt.Printf("session 2: graph has %d workloads (%d blue edges, %d red)\n",
		before.Workloads, before.SourceEdges, before.TargetEdges)

	for _, name := range []string{"Spark-lr", "Spark-kmeans", "Spark-sort"} {
		target, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		meter := oracle.NewMeter(simulator, 50)
		pred, err := predictor.PredictOnline(target, meter)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s -> %-14s (%d runs, converged=%v)\n",
			name, pred.Best.Name, pred.OnlineRuns, pred.Converged)

		// Absorb the learned target: its red edges join the graph and the
		// K-Means model retrains cheaply (Algorithm 1 line 13).
		sandbox := simulator.ProfileRun(target, mustFind(catalog, predictor.Config().SandboxVM), 50)
		vec := project(sandbox.Corr.Slice(), predictor.Knowledge().Kept)
		if err := predictor.AbsorbTarget(name, pred.LabelWeights, vec); err != nil {
			log.Fatal(err)
		}
	}

	after := predictor.Knowledge().Graph.Stats(0.05)
	fmt.Printf("\nafter absorption: %d workloads (%d blue edges, %d red edges)\n",
		after.Workloads, after.SourceEdges, after.TargetEdges)
	fmt.Println("the knowledge base now covers the new framework's workloads too")
}

func mustFind(catalog []cloud.VMType, name string) cloud.VMType {
	vm, err := cloud.Find(catalog, name)
	if err != nil {
		log.Fatal(err)
	}
	return vm
}

// project selects kept feature indices (mirrors the core's internal helper).
func project(v []float64, kept []int) []float64 {
	out := make([]float64, len(kept))
	for i, j := range kept {
		out[i] = v[j]
	}
	return out
}
