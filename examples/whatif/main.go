// Whatif: catalog exploration. Renders Figure 1 style heat maps for one
// application per framework and shows how the best VM type shifts as the
// input dataset grows through the HiBench scales (large -> huge -> gigantic).
//
// Run with:
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func main() {
	catalog := cloud.Catalog120()
	simulator := sim.New(sim.Config{Repeats: 5})

	// Part 1: Figure 1 style budget heat maps — observe that the cheap
	// region sits at a similar CPU-to-memory ratio in all three frameworks.
	for _, name := range []string{"Hadoop-terasort", "Hive-aggregation", "Spark-page-rank"} {
		app, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		heatmap(simulator, catalog, app)
		fmt.Println()
	}

	// Part 2: input-size scaling. The best VM type is not static — it moves
	// up the size ladder as the dataset grows.
	fmt.Println("best VM type by HiBench input scale (Spark-sort):")
	app, err := workload.ByName("Spark-sort")
	if err != nil {
		log.Fatal(err)
	}
	for _, scale := range []string{"large", "huge", "gigantic"} {
		gb, err := workload.InputSizeGB(scale)
		if err != nil {
			log.Fatal(err)
		}
		sized := app.WithInput(gb)
		truth := oracle.Build(simulator, []workload.App{sized}, catalog, 5)
		byTime, sec, err := truth.BestByTime(sized.Name)
		if err != nil {
			log.Fatal(err)
		}
		byCost, usd, err := truth.BestByCost(sized.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s (%5.1f GB): fastest %-14s %7.1f s | cheapest %-14s $%.4f\n",
			scale, gb, byTime.Name, sec, byCost.Name, usd)
	}
}

// heatmap renders the min-budget grid over (vCPUs x GiB-per-vCPU).
func heatmap(s *sim.Simulator, catalog []cloud.VMType, app workload.App) {
	value := map[string]float64{}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, vm := range catalog {
		p := s.ProfileRun(app, vm, 3)
		value[vm.Name] = p.CostUSD
		if p.CostUSD < lo {
			lo = p.CostUSD
		}
		if p.CostUSD > hi {
			hi = p.CostUSD
		}
	}
	cpuSet := map[int]bool{}
	ratioSet := map[float64]bool{}
	for _, vm := range catalog {
		cpuSet[vm.VCPUs] = true
		ratioSet[math.Round(vm.MemPerVCPU())] = true
	}
	var cpus []int
	for c := range cpuSet {
		cpus = append(cpus, c)
	}
	sort.Ints(cpus)
	var ratios []float64
	for r := range ratioSet {
		ratios = append(ratios, r)
	}
	sort.Float64s(ratios)

	fmt.Printf("budget heat map: %s (0 = cheapest, 9 = most expensive)\n", app.Name)
	fmt.Printf("%9s", "GiB/vCPU")
	for _, c := range cpus {
		fmt.Printf("%4d", c)
	}
	fmt.Println(" <- vCPUs")
	for i := len(ratios) - 1; i >= 0; i-- {
		fmt.Printf("%9.0f", ratios[i])
		for _, c := range cpus {
			best := math.Inf(1)
			for _, vm := range catalog {
				if vm.VCPUs == c && math.Round(vm.MemPerVCPU()) == ratios[i] {
					if v := value[vm.Name]; v < best {
						best = v
					}
				}
			}
			if math.IsInf(best, 1) {
				fmt.Printf("%4s", ".")
				continue
			}
			fmt.Printf("%4d", int(9*(math.Log(best)-math.Log(lo))/(math.Log(hi)-math.Log(lo))))
		}
		fmt.Println()
	}
}
